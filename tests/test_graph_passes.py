"""Unit + differential tests for the graph-optimizer pass pipeline.

Each pass is exercised on tiny captured programs where its effect is
observable (folded constants, removed dead ops, fused chains, planned
buffers), and the pipeline as a whole is locked to the unoptimized replay
bit-for-bit: same losses, same gradients, same trained state — across the
TCN seeds and the full three-phase PIT run.  ``CompiledStep.alloc_stats``
is asserted to show zero steady-state growth, the "optimized replay
allocates nothing" guarantee.
"""

import numpy as np
import pytest

from repro.autograd import (
    CompiledStep,
    Tensor,
    record_side_effect,
    set_default_dtype,
)
from repro.autograd.graph import build_program, capture
from repro.autograd.graph.ir import EffectNode, OpNode
from repro.autograd.graph.passes import (
    ENV_GRAPH_OPT,
    FusedOp,
    eliminate_dead_nodes,
    fold_constants,
    fuse_chains,
    graph_opt_default,
    resolve_graph_opt,
)
from repro.core import PITTrainer, size_regularizer
from repro.core.pit_conv import PITConv1d
from repro.core.trainer import make_training_step
from repro.data import ArrayDataset, DataLoader
from repro.models import restcn_seed, temponet_seed
from repro.nn import (
    CausalConv1d,
    GlobalAvgPool1d,
    Linear,
    ReLU,
    Sequential,
    mae_loss,
    mse_loss,
    polyphonic_nll,
)
from repro.optim import Adam


def trace_program(step_fn, x, y):
    """Capture one step into a (program, outputs) pair."""
    with capture() as tracer:
        tx, ty = Tensor(x), Tensor(y)
        tracer.add_input(tx)
        tracer.add_input(ty)
        outs = step_fn(tx, ty)
        outs = outs if isinstance(outs, tuple) else (outs,)
        outs[0].backward()
    assert tracer.failure is None, tracer.failure
    return build_program(tracer, outs[0], outs), outs


def op_names(program):
    return [node.op.name for node in program.schedule
            if type(node) is OpNode]


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------

class TestKnobs:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(ENV_GRAPH_OPT, raising=False)
        assert graph_opt_default() == "default"
        assert resolve_graph_opt(None) == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_GRAPH_OPT, "none")
        assert resolve_graph_opt(None) == "none"
        # An explicit argument beats the environment.
        assert resolve_graph_opt("default") == "default"

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="graph optimization level"):
            resolve_graph_opt("aggressive")
        with pytest.raises(ValueError):
            CompiledStep(lambda x, y: x, optimize="O3")


# ----------------------------------------------------------------------
# Pass 1: constant folding
# ----------------------------------------------------------------------

class TestFoldConstants:
    def test_constant_subgraph_folds(self):
        w = Tensor(np.ones((3,)), requires_grad=True)
        c1, c2 = Tensor([1.0, 2.0, 3.0]), Tensor([2.0, 2.0, 2.0])

        def step_fn(x, y):
            scale = (c1 * c2) + 1.0          # entirely constant
            return ((x * scale * w) - y).abs().mean()

        program, _ = trace_program(step_fn, np.ones(3), np.zeros(3))
        ops_before = op_names(program)
        assert ops_before.count("mul") >= 3
        assert "add" in ops_before            # the +1.0 constant op
        folded = fold_constants(program)
        assert folded == 2                    # c1*c2 and +1.0
        assert "add" not in op_names(program)
        # The folded values are bound as constant leaves with unique slots.
        slots = {slot for slot, _ in program.leaves}
        assert len(slots) == len(program.leaves)

    def test_folding_respects_dtype(self):
        set_default_dtype("float32")
        try:
            c1, c2 = Tensor([1.0, 2.0]), Tensor([0.5, 4.0])
            w = Tensor(np.ones(2), requires_grad=True)

            def step_fn(x, y):
                return (x * (c1 > c2) * w).sum()  # comparison -> bool -> f32

            program, _ = trace_program(step_fn, np.ones(2), np.zeros(2))
            folded = fold_constants(program)
            assert folded == 1
            slot, leaf = program.leaves[-1]
            assert leaf.data.dtype == np.float32
            assert np.array_equal(leaf.data, np.array([1.0, 0.0], np.float32))
        finally:
            set_default_dtype("float64")

    def test_inputs_are_never_constants(self):
        """Batch inputs appear in program.leaves but must never fold."""
        w = Tensor(np.ones(4), requires_grad=True)

        def step_fn(x, y):
            return (x[0:2].sum() + (x * w).sum()) - y.sum()

        program, _ = trace_program(step_fn, np.arange(4.0), np.zeros(1))
        before = len(op_names(program))
        assert fold_constants(program) == 0
        assert len(op_names(program)) == before

    def test_stateful_dropout_never_folds(self):
        from repro.autograd import dropout
        c = Tensor(np.ones(64))
        w = Tensor(np.ones(64), requires_grad=True)
        rng = np.random.default_rng(0)

        def step_fn(x, y):
            masked = dropout(c, 0.5, training=True, rng=rng)  # constant input
            return (masked * w * x).sum()

        program, _ = trace_program(step_fn, np.ones(64), np.zeros(1))
        fold_constants(program)
        assert "dropout" in op_names(program)

    def test_frozen_pit_mask_subgraph_folds(self):
        """Phase 3: frozen masks turn the whole mask product constant."""
        rng = np.random.default_rng(0)
        model = Sequential(PITConv1d(2, 3, rf_max=9, rng=rng),
                           GlobalAvgPool1d(), Linear(3, 1, rng=rng))
        model[0].freeze()
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_opt="default")
        x, y = rng.standard_normal((2, 2, 16)), rng.standard_normal((2, 1))
        step(x, y)
        stats = next(iter(step.opt_stats.values()))
        # The frozen mask's kernel-order getitem pre-evaluates at least.
        assert stats["folded"] >= 1


# ----------------------------------------------------------------------
# Pass 2: dead-node elimination
# ----------------------------------------------------------------------

class TestDeadNodeElimination:
    def test_dead_subgraph_removed(self):
        w = Tensor(np.ones(3), requires_grad=True)

        def step_fn(x, y):
            dead = (x - y).abs().mean()       # feeds nothing
            return (x * w).sum()

        program, _ = trace_program(step_fn, np.ones(3), np.zeros(3))
        assert "abs" in op_names(program)
        removed = eliminate_dead_nodes(program)
        assert removed == 3                    # sub, abs, mean
        assert "abs" not in op_names(program)

    def test_effect_nodes_and_their_inputs_survive(self):
        """Side effects (BatchNorm running stats) are roots of liveness."""
        w = Tensor(np.ones(3), requires_grad=True)
        seen = []

        def update(mean_value):
            seen.append(float(mean_value))

        def step_fn(x, y):
            mean = x.mean()                    # feeds only the effect
            record_side_effect((mean,), update)
            return (x * w).sum()

        program, _ = trace_program(step_fn, np.ones(3), np.zeros(3))
        removed = eliminate_dead_nodes(program)
        assert removed == 0
        assert "mean" in op_names(program)
        assert any(type(node) is EffectNode for node in program.schedule)

    def test_compiled_replay_still_fires_effects(self):
        w = Tensor(np.ones(3), requires_grad=True)
        seen = []

        def step_fn(x, y):
            mean = x.mean()
            record_side_effect((mean,), lambda m: seen.append(float(m)))
            return (x * w).sum()

        step = CompiledStep(step_fn, optimize="default")
        for value in (1.0, 2.0, 3.0):
            step(np.full(3, value), np.zeros(3))
        assert seen == [1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# Pass 3: fusion
# ----------------------------------------------------------------------

class TestFusion:
    def test_loss_chain_fuses(self):
        w = Tensor(np.ones((4,)), requires_grad=True)

        def step_fn(x, y):
            return ((x * w) - y).abs().mean()

        program, _ = trace_program(step_fn, np.ones(4), np.zeros(4))
        groups, absorbed = fuse_chains(program)
        assert groups >= 1
        fused = [node.op for node in program.schedule
                 if type(node) is OpNode and isinstance(node.op, FusedOp)]
        assert fused and any("abs" in op.name for op in fused)

    def test_fused_backward_is_bit_identical(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.standard_normal((5,)), requires_grad=True)

        def step_fn(x, y):
            return ((x * w) - y).abs().mean()

        plain = CompiledStep(step_fn, optimize="none")
        fused = CompiledStep(step_fn, optimize="default")
        for i in range(4):
            x = rng.standard_normal(5)
            y = rng.standard_normal(5)
            w.zero_grad()
            out_a = plain(x, y)
            grad_a = np.array(w.grad)
            w.zero_grad()
            out_b = fused(x, y)
            assert out_a == out_b
            assert np.array_equal(grad_a, w.grad)
        stats = next(iter(fused.opt_stats.values()))
        assert stats["fused_groups"] >= 1

    def test_output_slots_never_fuse_away(self):
        """Both step outputs (loss, task) stay addressable after fusion."""
        w = Tensor(np.ones(3), requires_grad=True)

        def step_fn(x, y):
            task = (x * w).sum()
            return task + 0.5 * (w * w).sum(), task

        step = CompiledStep(step_fn, optimize="default")
        first = step(np.ones(3), np.zeros(3))
        second = step(np.ones(3), np.zeros(3))
        assert first == second
        assert len(first) == 2


# ----------------------------------------------------------------------
# Pass 4: memory planning / alloc_stats
# ----------------------------------------------------------------------

class TestMemoryPlan:
    def _conv_model(self):
        rng = np.random.default_rng(7)
        return Sequential(
            CausalConv1d(3, 8, kernel_size=5, rng=rng), ReLU(),
            CausalConv1d(8, 8, kernel_size=3, rng=rng), ReLU(),
            GlobalAvgPool1d(), Linear(8, 2, rng=rng))

    def test_inplace_when_fusion_blocked_by_effect(self):
        w = Tensor(np.ones((16,)), requires_grad=True)
        seen = []

        def step_fn(x, y):
            a = x * w
            # The effect read blocks fusing [mul, relu], and the two
            # consumers of b keep relu out of any chain — a standalone
            # relu whose input dies right there, so it runs in place.
            record_side_effect((a,), lambda v: seen.append(v.shape))
            b = a.relu()
            return b.sum() + b.mean()

        step = CompiledStep(step_fn, optimize="default")
        x = np.linspace(-1, 1, 16)
        first = step(x, np.zeros(1))
        stats = next(iter(step.opt_stats.values()))
        assert stats["inplace_ops"] >= 1
        assert step(x, np.zeros(1)) == first

    def test_alloc_stats_zero_steady_state_growth(self):
        model = self._conv_model()
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_opt="default")
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((4, 3, 32)), rng.standard_normal((4, 2))
        step(x, y)          # trace
        step(x, y)          # warm replay (materializes lazy scratch)
        warm = step.alloc_stats
        assert warm["programs"] == 1
        assert warm["arena_buffers"] > 0
        for _ in range(5):
            model.zero_grad()
            step(x, y)
        steady = step.alloc_stats
        assert steady["steady_state_growth"] == 0
        assert steady["persistent_buffers"] == warm["persistent_buffers"]

    def test_arena_shares_buffers(self):
        model = temponet_seed(width_mult=0.125, seed=3)

        def step_fn(tx, ty):
            task = mae_loss(model(tx), ty)
            return task + size_regularizer(model, 0.02), task

        step = CompiledStep(step_fn, optimize="default")
        rng = np.random.default_rng(0)
        step(rng.standard_normal((4, 4, 256)), rng.standard_normal((4, 1)))
        stats = next(iter(step.opt_stats.values()))
        assert stats["arena_reuses"] >= 1
        assert stats["inplace_ops"] >= 1
        assert stats["fused_groups"] >= 10

    def test_views_never_share_recycled_buffers(self):
        """A reshape of an intermediate keeps the storage alive."""
        rng = np.random.default_rng(1)
        w = Tensor(rng.standard_normal((6,)), requires_grad=True)

        def step_fn(x, y):
            a = x + w                    # fwd_out op -> arena candidate
            b = a.reshape(2, 3)          # view of a
            c = (x * 2.0).relu()         # more arena traffic
            return (b.sum() + c.sum()) - y.sum()

        plain = CompiledStep(step_fn, optimize="none")
        opt = CompiledStep(step_fn, optimize="default")
        for _ in range(3):
            x = rng.standard_normal(6)
            y = rng.standard_normal(1)
            w.zero_grad()
            ref = plain(x, y)
            ga = np.array(w.grad)
            w.zero_grad()
            assert opt(x, y) == ref
            assert np.array_equal(w.grad, ga)


# ----------------------------------------------------------------------
# Whole-pipeline differential: optimized == unoptimized, bit for bit
# ----------------------------------------------------------------------

def run_training(make_model, batches, loss_fn, extra_loss_fn, graph_opt,
                 graph_exec="interp"):
    model = make_model()
    extra = (lambda: extra_loss_fn(model)) if extra_loss_fn else None
    step = make_training_step(model, loss_fn, extra_loss=extra,
                              compile_step=True, graph_opt=graph_opt,
                              graph_exec=graph_exec)
    optimizer = Adam(model.parameters(), lr=1e-3)
    losses = []
    for x, y in batches:
        model.train()
        optimizer.zero_grad()
        losses.append(step(x, y))
        optimizer.step()
    assert step.fallback_reason is None, step.fallback_reason
    assert not step.exec_fallbacks, step.exec_fallbacks
    assert all(mode == graph_exec for mode in step.executors.values())
    return losses, model.state_dict(), step


class TestPipelineParity:
    def _batches(self, xshape, yshape, count=3, seed=0):
        rng = np.random.default_rng(seed)
        return [(rng.standard_normal(xshape), rng.standard_normal(yshape))
                for _ in range(count)]

    @pytest.mark.parametrize("graph_exec", ["interp", "source"])
    @pytest.mark.parametrize("seed_fn,xshape,yshape,loss_fn", [
        (lambda: temponet_seed(width_mult=0.125, seed=3), (8, 4, 256),
         (8, 1), mae_loss),
        (lambda: restcn_seed(width_mult=0.05, seed=1), (4, 88, 48),
         (4, 88, 48), polyphonic_nll),
    ])
    def test_tcn_seeds_bit_identical(self, seed_fn, xshape, yshape, loss_fn,
                                     graph_exec):
        batches = self._batches(xshape, yshape)
        base, state_a, _ = run_training(
            seed_fn, batches, loss_fn,
            lambda m: size_regularizer(m, 0.02), "none")
        opt, state_b, step = run_training(
            seed_fn, batches, loss_fn,
            lambda m: size_regularizer(m, 0.02), "default", graph_exec)
        assert base == opt
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key
        stats = next(iter(step.opt_stats.values()))
        assert stats["fused_groups"] >= 1

    def test_three_phase_pit_bit_identical(self):
        outcomes = {}
        configs = [("none", "interp"), ("default", "interp"),
                   ("default", "source")]
        for graph_opt, graph_exec in configs:
            rng = np.random.default_rng(0)
            data = ArrayDataset(rng.standard_normal((24, 4, 256)),
                                rng.standard_normal((24, 1)))
            train = DataLoader(data, 8, shuffle=True,
                               rng=np.random.default_rng(1))
            val = DataLoader(data, 8)
            model = temponet_seed(width_mult=0.125, seed=3)
            trainer = PITTrainer(model, mae_loss, lam=0.5, gamma_lr=0.1,
                                 warmup_epochs=1, max_prune_epochs=2,
                                 prune_patience=2, finetune_epochs=1,
                                 finetune_patience=1, compile_step=True,
                                 graph_opt=graph_opt, graph_exec=graph_exec)
            outcomes[(graph_opt, graph_exec)] = (trainer.fit(train, val),
                                                 model.state_dict())
        base = outcomes[configs[0]]
        for config in configs[1:]:
            opt = outcomes[config]
            assert base[0].dilations == opt[0].dilations, config
            assert base[0].best_val == opt[0].best_val, config
            assert base[0].history == opt[0].history, config
            for key in base[1]:
                assert np.array_equal(base[1][key], opt[1][key]), (config, key)

    def test_shape_polymorphism_optimizes_each_program(self):
        rng = np.random.default_rng(5)
        model = Sequential(CausalConv1d(2, 4, kernel_size=3, rng=rng),
                           ReLU(), GlobalAvgPool1d(), Linear(4, 1, rng=rng))
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_opt="default")
        step(rng.standard_normal((4, 2, 16)), rng.standard_normal((4, 1)))
        step(rng.standard_normal((2, 2, 16)), rng.standard_normal((2, 1)))
        assert len(step.opt_stats) == 2
        assert all(s["fused_groups"] >= 1 for s in step.opt_stats.values())
