"""Tests for metrics, Pareto analysis and the DSE driver."""

import numpy as np
import pytest

from repro.core import PITResult
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import (
    DSEPoint,
    count_macs,
    dominates,
    evaluate_metric,
    hypervolume,
    hypervolume_2d,
    mae_metric,
    nll_metric,
    pareto_front,
    pareto_points,
    run_dse,
    select_small_medium_large,
)
from repro.nn import CausalConv1d, Linear, Flatten, ReLU, Sequential, mse_loss

RNG = np.random.default_rng(61)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))

    def test_partial_dominance(self):
        assert dominates((1, 2), (2, 2))
        assert dominates((2, 1), (2, 2))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_points_incomparable(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))


class TestParetoFront:
    POINTS = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0), (5.0, 2.0)]

    def test_front_indices(self):
        assert pareto_front(self.POINTS) == [0, 1, 3]

    def test_front_points_sorted(self):
        assert pareto_points(self.POINTS) == [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0)]

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [0]

    def test_duplicates_both_kept(self):
        # Equal points do not dominate each other; both survive.
        front = pareto_front([(1.0, 1.0), (1.0, 1.0)])
        assert front == [0, 1]

    def test_all_dominated_by_one(self):
        points = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_front(points) == [0]


class TestHypervolume:
    def test_single_point_rectangle(self):
        assert hypervolume_2d([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_point_outside_reference_ignored(self):
        assert hypervolume_2d([(5.0, 5.0)], (3.0, 3.0)) == 0.0

    def test_two_point_staircase(self):
        # Boxes [1,4]x[2,4] and [2,4]x[1,4]: area 6 + 2? Sweep: strip [1,2]
        # height (4-2)=2 -> 2; strip [2,4] height (4-1)=3 -> 6; total 8.
        hv = hypervolume_2d([(1.0, 2.0), (2.0, 1.0)], (4.0, 4.0))
        assert hv == pytest.approx(8.0)

    def test_dominated_point_does_not_change_hv(self):
        base = hypervolume_2d([(1.0, 2.0), (2.0, 1.0)], (4.0, 4.0))
        more = hypervolume_2d([(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)], (4.0, 4.0))
        assert more == pytest.approx(base)

    def test_better_front_larger_hv(self):
        worse = hypervolume_2d([(2.0, 2.0)], (4.0, 4.0))
        better = hypervolume_2d([(1.0, 1.0)], (4.0, 4.0))
        assert better > worse

    def test_empty(self):
        assert hypervolume_2d([], (1.0, 1.0)) == 0.0


class TestNDPareto:
    """The generalized (N-objective) dominance / front / hypervolume."""

    def test_dominates_3d(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 1, 1), (1, 1, 2))
        assert not dominates((1, 1, 1), (1, 1, 1))
        assert not dominates((1, 2, 3), (3, 2, 1))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension"):
            dominates((1, 2), (1, 2, 3))

    def test_front_3d(self):
        points = [(1.0, 1.0, 3.0), (1.0, 2.0, 2.0), (2.0, 2.0, 2.0),
                  (3.0, 3.0, 3.0)]
        # (2,2,2) is dominated by (1,2,2); (3,3,3) by everything.
        assert pareto_front(points) == [0, 1]

    def test_front_3d_duplicates_both_kept(self):
        assert pareto_front([(1.0, 1.0, 1.0), (1.0, 1.0, 1.0)]) == [0, 1]

    def test_front_3d_degenerate_all_dominated(self):
        points = [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 1.0, 3.0)]
        assert pareto_front(points) == [0]

    def test_hypervolume_single_point_3d(self):
        # Box [1,2]^3 -> volume 1.
        assert hypervolume([(1.0, 1.0, 1.0)], (2.0, 2.0, 2.0)) == \
               pytest.approx(1.0)

    def test_hypervolume_3d_inclusion_exclusion(self):
        # Three boxes of volume 3 each (3*1*1), pairwise intersections
        # (2,2,2)..(3,3,3) of volume 1, triple intersection volume 1:
        # 9 - 3 + 1 = 7.
        points = [(0.0, 2.0, 2.0), (2.0, 0.0, 2.0), (2.0, 2.0, 0.0)]
        assert hypervolume(points, (3.0, 3.0, 3.0)) == pytest.approx(7.0)

    def test_hypervolume_matches_2d_reference(self):
        points = [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)]
        assert hypervolume(points, (4.0, 4.0)) == \
               pytest.approx(hypervolume_2d(points, (4.0, 4.0)))

    def test_hypervolume_duplicate_points(self):
        base = hypervolume([(1.0, 2.0, 3.0)], (4.0, 4.0, 4.0))
        doubled = hypervolume([(1.0, 2.0, 3.0), (1.0, 2.0, 3.0)],
                              (4.0, 4.0, 4.0))
        assert doubled == pytest.approx(base)

    def test_hypervolume_dominated_point_contributes_nothing(self):
        front = [(0.0, 2.0, 2.0), (2.0, 0.0, 2.0), (2.0, 2.0, 0.0)]
        padded = front + [(2.5, 2.5, 2.5)]
        assert hypervolume(padded, (3.0, 3.0, 3.0)) == \
               pytest.approx(hypervolume(front, (3.0, 3.0, 3.0)))

    def test_hypervolume_all_outside_reference(self):
        assert hypervolume([(5.0, 5.0, 5.0)], (3.0, 3.0, 3.0)) == 0.0

    def test_hypervolume_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension"):
            hypervolume([(1.0, 1.0)], (3.0, 3.0, 3.0))


class TestObjectiveResolution:
    def _points(self):
        a = DSEPoint(lam=0.0, warmup_epochs=0, dilations=(1,), params=100,
                     loss=5.0, metrics={"latency_ms": 10.0, "energy_mj": 2.0})
        b = DSEPoint(lam=0.1, warmup_epochs=0, dilations=(1,), params=200,
                     loss=1.0, metrics={"latency_ms": 30.0, "energy_mj": 8.0})
        c = DSEPoint(lam=0.2, warmup_epochs=0, dilations=(1,), params=300,
                     loss=4.0, metrics={"latency_ms": 40.0, "energy_mj": 9.0})
        return a, b, c

    def test_objective_value_resolves_fields_and_metrics(self):
        from repro.evaluation import objective_value
        a, _, _ = self._points()
        assert objective_value(a, "params") == 100.0
        assert objective_value(a, "loss") == 5.0
        assert objective_value(a, "latency_ms") == 10.0
        assert objective_value(a, "nonexistent") is None

    def test_result_pareto_default_matches_legacy(self):
        from repro.evaluation import DSEResult
        a, b, c = self._points()
        result = DSEResult(points=[a, b, c])
        coords = [(p.params, p.loss) for p in result.points]
        legacy = [result.points[i] for i in pareto_front(coords)]
        assert result.pareto() == legacy

    def test_result_pareto_3d_front(self):
        from repro.evaluation import DSEResult
        a, b, c = self._points()
        result = DSEResult(points=[a, b, c])
        # c is dominated by b on every axis; a and b trade off loss vs cost.
        front = result.pareto(objectives=("params", "latency_ms", "loss"))
        assert front == [a, b]

    def test_result_pareto_skips_points_missing_metrics(self):
        from repro.evaluation import DSEResult
        a, b, _ = self._points()
        bare = DSEPoint(lam=0.3, warmup_epochs=0, dilations=(1,), params=1,
                        loss=0.0)  # no metrics (e.g. cached v1 entry)
        result = DSEResult(points=[a, b, bare])
        front = result.pareto(objectives=("params", "latency_ms", "loss"))
        assert bare not in front
        assert front == [a, b]


class TestMetrics:
    def test_evaluate_metric_averages_batches(self):
        net = Sequential(CausalConv1d(1, 1, 1, rng=np.random.default_rng(0)))
        x = RNG.standard_normal((6, 1, 4))
        data = ArrayDataset(x, np.zeros((6, 1, 4)))
        loader = DataLoader(data, 2)
        value = evaluate_metric(net, loader, mse_loss)
        assert np.isfinite(value)

    def test_nll_metric_runs(self):
        net = Sequential(CausalConv1d(88, 88, 1, rng=np.random.default_rng(0)))
        data = ArrayDataset(RNG.standard_normal((4, 88, 6)),
                            (RNG.random((4, 88, 6)) > 0.9).astype(float))
        assert nll_metric(net, DataLoader(data, 2)) > 0

    def test_mae_metric_runs(self):
        net = Sequential(Flatten(), Linear(8, 1, rng=np.random.default_rng(0)))
        data = ArrayDataset(RNG.standard_normal((4, 2, 4)),
                            np.full((4, 1), 70.0))
        assert mae_metric(net, DataLoader(data, 2)) > 0

    def test_count_macs(self):
        net = Sequential(CausalConv1d(2, 4, 3, rng=np.random.default_rng(0)))
        assert count_macs(net, (1, 2, 10)) == 2 * 4 * 3 * 10

    def test_empty_loader_raises(self):
        net = Sequential(CausalConv1d(1, 1, 1, rng=np.random.default_rng(0)))
        loader = DataLoader(ArrayDataset(np.zeros((0, 1, 4)), np.zeros((0, 1, 4))), 2)
        with pytest.raises(ValueError):
            evaluate_metric(net, loader, mse_loss)


def _point(lam, params, loss):
    return DSEPoint(lam=lam, warmup_epochs=1, dilations=(1,),
                    params=params, loss=loss, result=None)


class TestSelection:
    POINTS = [_point(0.1, 100, 5.0), _point(0.2, 400, 3.0),
              _point(0.3, 900, 2.0), _point(0.4, 250, 4.0)]

    def test_small_is_fewest_params(self):
        sel = select_small_medium_large(self.POINTS, reference_params=420)
        assert sel["small"].params == 100

    def test_large_is_most_params(self):
        sel = select_small_medium_large(self.POINTS, reference_params=420)
        assert sel["large"].params == 900

    def test_medium_closest_to_reference(self):
        sel = select_small_medium_large(self.POINTS, reference_params=420)
        assert sel["medium"].params == 400

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            select_small_medium_large([], reference_params=100)

    def test_missing_reference_raises(self):
        with pytest.raises(TypeError, match="reference"):
            select_small_medium_large(self.POINTS)

    def test_selection_along_metric_objective(self):
        points = [DSEPoint(lam=p.lam, warmup_epochs=1, dilations=(1,),
                           params=p.params, loss=p.loss,
                           metrics={"latency_ms": 1000.0 / p.params})
                  for p in self.POINTS]
        sel = select_small_medium_large(points, objective="latency_ms",
                                        reference=3.0)
        assert sel["small"].params == 900   # fastest = fewest ms
        assert sel["large"].params == 100
        # closest to 3.0 ms: latencies are 10, 2.5, 1.11, 4 -> 2.5 (400 p)
        assert sel["medium"].params == 400

    def test_points_without_objective_raise(self):
        with pytest.raises(ValueError, match="latency_ms"):
            select_small_medium_large(self.POINTS, objective="latency_ms",
                                      reference=1.0)


class TestRunDSE:
    def test_sweep_produces_grid_points(self):
        from repro.core import PITConv1d
        from repro.nn import Module

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.c = PITConv1d(1, 2, rf_max=5, rng=np.random.default_rng(0))
                self.h = CausalConv1d(2, 1, 1, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.h(self.c(x))

        x = RNG.standard_normal((8, 1, 10))
        y = np.concatenate([np.zeros((8, 1, 1)), x[:, :, :-1]], axis=2)
        train = DataLoader(ArrayDataset(x[:4], y[:4]), 4)
        val = DataLoader(ArrayDataset(x[4:], y[4:]), 4)
        result = run_dse(Tiny, mse_loss, train, val,
                         lambdas=[0.0, 5.0], warmups=[0, 1],
                         trainer_kwargs=dict(max_prune_epochs=2, finetune_epochs=1,
                                             gamma_lr=0.1))
        assert len(result.points) == 4
        assert {p.lam for p in result.points} == {0.0, 5.0}
        assert {p.warmup_epochs for p in result.points} == {0, 1}
        front = result.pareto()
        assert front  # at least one non-dominated point
        assert result.smallest().params <= min(p.params for p in result.points)
        assert result.best_loss().loss <= min(p.loss for p in result.points)
