"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3))

    def forward(self, x):
        return x * self.weight


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf()
        self.right = Leaf()
        self.own = Parameter(np.zeros(2))

    def forward(self, x):
        return self.left(x) + self.right(x)


class TestRegistration:
    def test_parameters_registered_on_setattr(self):
        leaf = Leaf()
        assert len(leaf.parameters()) == 1

    def test_nested_parameters_found(self):
        tree = Tree()
        assert len(tree.parameters()) == 3

    def test_named_parameters_use_dotted_paths(self):
        names = dict(Tree().named_parameters())
        assert set(names) == {"own", "left.weight", "right.weight"}

    def test_modules_iteration(self):
        tree = Tree()
        assert len(tree.modules()) == 3
        assert len(tree.children()) == 2

    def test_named_modules(self):
        names = [name for name, _ in Tree().named_modules()]
        assert "" in names and "left" in names and "right" in names

    def test_parameter_requires_grad(self):
        assert Parameter(np.ones(2)).requires_grad

    def test_count_parameters(self):
        assert Tree().count_parameters() == 8  # 3 + 3 + 2


class TestBuffers:
    def test_register_and_update(self):
        m = Module()
        m.register_buffer("stats", np.zeros(3))
        assert np.allclose(m.stats, 0.0)
        m.update_buffer("stats", np.ones(3))
        assert np.allclose(m.stats, 1.0)

    def test_update_unknown_buffer_raises(self):
        m = Module()
        with pytest.raises(KeyError):
            m.update_buffer("nope", np.ones(1))

    def test_buffers_in_state_dict(self):
        m = Module()
        m.register_buffer("stats", np.arange(3.0))
        assert "stats" in m.state_dict()

    def test_named_buffers_nested(self):
        outer = Module()
        inner = Module()
        inner.register_buffer("b", np.zeros(1))
        outer.inner = inner
        assert dict(outer.named_buffers()).keys() == {"inner.b"}


class TestModes:
    def test_train_eval_propagate(self):
        tree = Tree()
        tree.eval()
        assert not tree.training
        assert not tree.left.training
        tree.train()
        assert tree.right.training

    def test_zero_grad(self):
        leaf = Leaf()
        leaf(Tensor(np.ones(3))).sum().backward()
        assert leaf.weight.grad is not None
        leaf.zero_grad()
        assert leaf.weight.grad is None


class TestStateDict:
    def test_round_trip(self):
        a, b = Tree(), Tree()
        for p in a.parameters():
            p.data[...] = np.random.default_rng(0).standard_normal(p.shape)
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        leaf = Leaf()
        state = leaf.state_dict()
        state["weight"][0] = 42.0
        assert leaf.weight.data[0] == 1.0

    def test_missing_key_raises(self):
        tree = Tree()
        state = tree.state_dict()
        del state["own"]
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_unexpected_key_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["own"] = np.zeros(5)
        with pytest.raises(ValueError):
            tree.load_state_dict(state)

    def test_buffer_round_trip(self):
        a, b = Module(), Module()
        a.register_buffer("s", np.arange(3.0))
        b.register_buffer("s", np.zeros(3))
        b.load_state_dict(a.state_dict())
        assert np.allclose(b.s, [0, 1, 2])


class TestSequential:
    def test_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        out = seq(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)

    def test_len_getitem_iter(self):
        seq = Sequential(ReLU(), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert len(list(seq)) == 2

    def test_append(self):
        seq = Sequential(ReLU())
        seq.append(ReLU())
        assert len(seq) == 2

    def test_parameters_collected(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        assert len(seq.parameters()) == 4

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_children(self):
        assert "ReLU" in repr(Sequential(ReLU()))
