"""Tests for the additional tensor shape ops (squeeze/unsqueeze/flip/split/repeat)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients

RNG = np.random.default_rng(77)


class TestSqueezeUnsqueeze:
    def test_squeeze_shape(self):
        assert Tensor(np.zeros((2, 1, 3))).squeeze(1).shape == (2, 3)

    def test_squeeze_rejects_non_unit(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 3))).squeeze(0)

    def test_unsqueeze_shape(self):
        assert Tensor(np.zeros((2, 3))).unsqueeze(1).shape == (2, 1, 3)

    def test_round_trip(self):
        a = Tensor(RNG.standard_normal((2, 3)))
        assert a.unsqueeze(0).squeeze(0).shape == a.shape

    def test_gradients(self):
        a = Tensor(RNG.standard_normal((2, 1, 3)), requires_grad=True)
        check_gradients(lambda x: x.squeeze(1) * 2.0, [a])
        b = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        check_gradients(lambda x: x.unsqueeze(-1) * 3.0, [b])


class TestFlip:
    def test_values(self):
        a = Tensor(np.arange(4.0))
        assert a.flip(0).data.tolist() == [3, 2, 1, 0]

    def test_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.flip(1).data[0].tolist() == [2, 1, 0]

    def test_gradient_flips_back(self):
        a = Tensor(np.arange(3.0), requires_grad=True)
        (a.flip(0) * Tensor(np.array([1.0, 0.0, 0.0]))).sum().backward()
        assert a.grad.tolist() == [0, 0, 1]

    def test_gradcheck(self):
        a = Tensor(RNG.standard_normal((2, 4)), requires_grad=True)
        weights = Tensor(RNG.standard_normal((2, 4)))
        check_gradients(lambda x: x.flip(-1) * weights, [a])

    def test_double_flip_identity(self):
        a = Tensor(RNG.standard_normal(5))
        assert np.allclose(a.flip(0).flip(0).data, a.data)


class TestSplit:
    def test_even_split(self):
        a = Tensor(np.arange(6.0))
        parts = a.split(3)
        assert len(parts) == 3
        assert parts[1].data.tolist() == [2, 3]

    def test_axis_split(self):
        a = Tensor(np.arange(12.0).reshape(2, 6))
        parts = a.split(2, axis=1)
        assert parts[0].shape == (2, 3)

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(5)).split(2)

    def test_gradients_route_to_sections(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        left, right = a.split(2)
        (left * 2.0 + right * 3.0).sum().backward()
        assert a.grad.tolist() == [2, 2, 3, 3]


class TestRepeat:
    def test_values(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert a.repeat(3, axis=0).data.tolist() == [1, 2, 1, 2, 1, 2]

    def test_gradient_sums_copies(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        a.repeat(3, axis=0).sum().backward()
        assert a.grad.tolist() == [3, 3]

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(2)).repeat(0, axis=0)

    def test_gradcheck(self):
        a = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        weights = Tensor(RNG.standard_normal((4, 3)))
        check_gradients(lambda x: x.repeat(2, axis=0) * weights, [a])
