"""Tests for RNN layer costing in the GAP8 model (arithmetic-intensity claim)."""

import numpy as np
import pytest

from repro.hw import GAP8Config, GAP8Model
from repro.models import HeartRateGRU, MusicLSTM, restcn_hand_tuned
from repro.nn import LSTM, GRU, Sequential


class TestRNNCosting:
    def test_lstm_layer_priced(self):
        model = MusicLSTM(num_keys=8, hidden=16, rng=np.random.default_rng(0))
        report = GAP8Model().estimate(model, (1, 8, 32))
        kinds = {layer.kind for layer in report.layers}
        assert "recurrent" in kinds
        assert "conv1d" in kinds  # the 1-tap head

    def test_lstm_macs_scale_with_time(self):
        model = MusicLSTM(num_keys=8, hidden=16, rng=np.random.default_rng(0))
        gap8 = GAP8Model()
        short = gap8.estimate(model, (1, 8, 16))
        long = gap8.estimate(model, (1, 8, 64))
        rec_short = [l for l in short.layers if l.kind == "recurrent"][0]
        rec_long = [l for l in long.layers if l.kind == "recurrent"][0]
        assert rec_long.macs == 4 * rec_short.macs

    def test_lstm_mac_count_exact(self):
        lstm = LSTM(8, 16, rng=np.random.default_rng(0))
        model = MusicLSTM(num_keys=8, hidden=16, rng=np.random.default_rng(0))
        report = GAP8Model().estimate(model, (1, 8, 10))
        rec = [l for l in report.layers if l.kind == "recurrent"][0]
        weight_macs = 4 * 16 * 8 + 4 * 16 * 16  # W_ih + W_hh rows
        assert rec.macs == weight_macs * 10

    def test_gru_priced(self):
        model = HeartRateGRU(hidden=16, rng=np.random.default_rng(0))
        report = GAP8Model().estimate(model, (1, 4, 64))
        assert any(l.kind == "recurrent" for l in report.layers)
        assert any(l.kind == "linear" for l in report.layers)

    def test_rnn_throughput_below_conv(self):
        """ms per MMAC must be worse for the RNN (the paper's premise)."""
        gap8 = GAP8Model()
        lstm = MusicLSTM(hidden=150, rng=np.random.default_rng(0))
        tcn = restcn_hand_tuned()
        lstm_report = gap8.estimate(lstm, (1, 88, 128))
        tcn_report = gap8.estimate(tcn, (1, 88, 128))
        lstm_eff = lstm_report.latency_ms / lstm_report.total_macs
        tcn_eff = tcn_report.latency_ms / tcn_report.total_macs
        assert lstm_eff > 2 * tcn_eff

    def test_rnn_rate_configurable(self):
        model = HeartRateGRU(hidden=16, rng=np.random.default_rng(0))
        slow = GAP8Model(GAP8Config(rnn_mac_rate=0.5)).estimate(model, (1, 4, 64))
        fast = GAP8Model(GAP8Config(rnn_mac_rate=2.0)).estimate(model, (1, 4, 64))
        assert slow.latency_ms > fast.latency_ms

    def test_untraced_rnn_raises(self):
        gap8 = GAP8Model()
        lstm = LSTM(2, 4, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            gap8._layer_cost("enc", lstm, True)

    def test_rnn_weights_counted_in_network_bytes(self):
        model = HeartRateGRU(hidden=16, rng=np.random.default_rng(0))
        report = GAP8Model().estimate(model, (1, 4, 64))
        gru_params = sum(p.data.size for _, p in model.encoder.named_parameters())
        assert report.total_weight_bytes >= gru_params
