"""Exhaustive-search oracle tests: PIT vs the true Pareto front.

On a tiny model whose dilation space is fully enumerable, exhaustive
training of every configuration gives the ground-truth accuracy-size
front.  PIT's single run must land on or near it — the strongest
correctness check a NAS method admits at test scale.
"""

import numpy as np
import pytest

from repro.baselines import exhaustive_search
from repro.core import PITConv1d, PITTrainer, pit_layers
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import pareto_points
from repro.nn import CausalConv1d, Module, ReLU, mse_loss

RNG = np.random.default_rng(71)


class TinySpace(Module):
    """One searchable conv: |space| = 3 (d in {1, 2, 4})."""

    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv = PITConv1d(1, 3, rf_max=5, rng=rng)
        self.relu = ReLU()
        self.head = CausalConv1d(3, 1, kernel_size=1, rng=rng)

    def forward(self, x):
        return self.head(self.relu(self.conv(x)))


def make_loaders(n=20, t=12, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, t))
    y = np.concatenate([np.zeros((n, 1, 1)), x[:, :, :-1]], axis=2)
    train = ArrayDataset(x[: n // 2], y[: n // 2])
    val = ArrayDataset(x[n // 2:], y[n // 2:])
    return (DataLoader(train, 10, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 10))


class TestExhaustiveSearch:
    def test_covers_whole_space(self):
        train, val = make_loaders()
        results = exhaustive_search(TinySpace(), mse_loss, train, val,
                                    epochs=2, patience=2)
        assert len(results) == 3
        assert {r.dilations for r in results} == {(1,), (2,), (4,)}

    def test_param_counts_decrease_with_dilation(self):
        train, val = make_loaders()
        results = exhaustive_search(TinySpace(), mse_loss, train, val,
                                    epochs=1, patience=1)
        by_dilation = {r.dilations[0]: r.params for r in results}
        assert by_dilation[1] > by_dilation[2] > by_dilation[4]

    def test_rejects_large_spaces(self):
        from repro.models import temponet_seed
        train, val = make_loaders()
        with pytest.raises(ValueError):
            exhaustive_search(temponet_seed(width_mult=0.125, seed=0),
                              mse_loss, train, val, max_configs=16)

    def test_pit_lands_on_or_near_true_front(self):
        """PIT's output is not strictly dominated by the oracle front.

        Tolerance: PIT's loss may exceed the oracle's at equal size by the
        (small) gap from its shared-weights training, but the architecture
        itself must be one the oracle also considers competitive.
        """
        train, val = make_loaders()
        oracle = exhaustive_search(TinySpace(), mse_loss, train, val,
                                   epochs=8, lr=0.01, patience=8)
        front = pareto_points([(r.params, r.best_val) for r in oracle])

        model = TinySpace(seed=3)
        trainer = PITTrainer(model, mse_loss, lam=0.05, gamma_lr=0.05,
                             lr=0.01, warmup_epochs=2, max_prune_epochs=8,
                             prune_patience=8, finetune_epochs=8,
                             finetune_patience=8)
        result = trainer.fit(train, val)
        found = result.dilations[0]
        oracle_by_d = {r.dilations[0]: r for r in oracle}
        assert found in oracle_by_d
        # PIT's chosen configuration, trained by the oracle procedure,
        # is within 2x of the best oracle loss at its size or smaller.
        chosen = oracle_by_d[found]
        best_at_size = min(r.best_val for r in oracle
                           if r.params <= chosen.params)
        assert chosen.best_val <= best_at_size * 2.0
