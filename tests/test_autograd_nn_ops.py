"""Tests for softmax family, STE binarization and dropout."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    binarize_ste,
    check_gradients,
    dropout,
    log_softmax,
    logsumexp,
    softmax,
)

RNG = np.random.default_rng(11)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor(RNG.standard_normal((4, 5))), axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_invariant_to_shift(self):
        x = RNG.standard_normal((3, 4))
        a = softmax(Tensor(x), axis=1).data
        b = softmax(Tensor(x + 100.0), axis=1).data
        assert np.allclose(a, b)

    def test_stable_for_large_logits(self):
        out = softmax(Tensor([1e4, 0.0]), axis=0)
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(1.0)

    def test_gradcheck(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        weights = Tensor(RNG.standard_normal((3, 4)))
        check_gradients(lambda x: softmax(x, axis=1) * weights, [x])

    def test_axis_zero(self):
        out = softmax(Tensor(RNG.standard_normal((3, 4))), axis=0)
        assert np.allclose(out.data.sum(axis=0), 1.0)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = RNG.standard_normal((3, 4))
        assert np.allclose(log_softmax(Tensor(x), axis=1).data,
                           np.log(softmax(Tensor(x), axis=1).data))

    def test_stable_for_large_logits(self):
        out = log_softmax(Tensor([1e4, 0.0]), axis=0)
        assert np.isfinite(out.data).all()

    def test_gradcheck(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        weights = Tensor(RNG.standard_normal((3, 4)))
        check_gradients(lambda x: log_softmax(x, axis=1) * weights, [x])


class TestLogSumExp:
    def test_matches_numpy(self):
        x = RNG.standard_normal((3, 4))
        expected = np.log(np.exp(x).sum(axis=1))
        assert np.allclose(logsumexp(Tensor(x), axis=1).data, expected)

    def test_keepdims(self):
        out = logsumexp(Tensor(RNG.standard_normal((3, 4))), axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_gradcheck(self):
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        check_gradients(lambda x: logsumexp(x, axis=1), [x])

    def test_stable(self):
        out = logsumexp(Tensor([1e4, 1e4]), axis=0)
        assert np.isfinite(out.data).all()


class TestBinarizeSTE:
    def test_forward_heaviside(self):
        out = binarize_ste(Tensor([0.2, 0.5, 0.9]), threshold=0.5)
        assert out.data.tolist() == [0.0, 1.0, 1.0]

    def test_threshold_inclusive(self):
        # Paper Eq. 2: H(γ̂ - δ) = 1 for γ̂ >= δ.
        assert binarize_ste(Tensor([0.5]), 0.5).data.tolist() == [1.0]

    def test_custom_threshold(self):
        out = binarize_ste(Tensor([0.2, 0.3]), threshold=0.25)
        assert out.data.tolist() == [0.0, 1.0]

    def test_straight_through_gradient_is_identity(self):
        x = Tensor([0.2, 0.9], requires_grad=True)
        out = binarize_ste(x) * Tensor([3.0, 5.0])
        out.sum().backward()
        # The step's true derivative is 0; STE passes the upstream through.
        assert np.allclose(x.grad, [3.0, 5.0])

    def test_gradient_flows_below_threshold(self):
        """Pruned γ̂ must keep receiving gradients so they can revive."""
        x = Tensor([0.1], requires_grad=True)
        binarize_ste(x).sum().backward()
        assert x.grad is not None and x.grad[0] == 1.0


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(RNG.standard_normal((4, 5)))
        out = dropout(x, 0.5, training=False)
        assert out is x

    def test_p_zero_is_identity(self):
        x = Tensor(RNG.standard_normal((4, 5)))
        assert dropout(x, 0.0, training=True) is x

    def test_inverted_scaling_preserves_mean(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_zeros_fraction(self):
        x = Tensor(np.ones((100, 100)))
        out = dropout(x, 0.25, training=True, rng=np.random.default_rng(0))
        zero_fraction = (out.data == 0).mean()
        assert zero_fraction == pytest.approx(0.25, abs=0.02)

    def test_gradient_uses_same_mask(self):
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = dropout(x, 0.5, training=True, rng=np.random.default_rng(3))
        out.sum().backward()
        # Gradient equals the scaling mask: zero where dropped, 2.0 where kept.
        assert np.array_equal(x.grad == 0.0, out.data == 0.0)
        assert np.allclose(x.grad[x.grad != 0], 2.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, training=True)
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), -0.1, training=True)
