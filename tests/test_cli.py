"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.benchmark == "ppg"
        assert args.width == 0.25
        assert args.lam == 0.02

    def test_invalid_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--benchmark", "imagenet"])

    def test_lambda_list(self):
        args = build_parser().parse_args(["sweep", "--lambdas", "0", "0.1"])
        assert args.lambdas == [0.0, 0.1]


class TestInfo:
    def test_ppg_info(self, capsys):
        assert main(["info", "--benchmark", "ppg", "--width", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "search space   : 10800" in out
        assert "searchable convs: 7" in out

    def test_music_info(self, capsys):
        assert main(["info", "--benchmark", "music", "--width", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "search space   : 129600" in out
        assert "rf_max= 33" in out


class TestDeploy:
    def test_deploy_default_dilations(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "all-1" in out
        assert "ms" in out

    def test_deploy_custom_dilations(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125",
                     "--dilations", "2", "2", "1", "4", "4", "8", "8"]) == 0
        out = capsys.readouterr().out
        assert "(2, 2, 1, 4, 4, 8, 8)" in out

    def test_deploy_layer_breakdown(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125",
                     "--layers"]) == 0
        out = capsys.readouterr().out
        assert "conv1d" in out
        assert "linear" in out

    def test_deploy_wrong_dilation_count(self):
        with pytest.raises(ValueError):
            main(["deploy", "--benchmark", "ppg", "--dilations", "2", "2"])


class TestSearch:
    def test_search_runs_and_reports(self, capsys):
        code = main(["search", "--benchmark", "ppg", "--width", "0.1",
                     "--lam", "0.5", "--gamma-lr", "0.1", "--warmup", "0",
                     "--epochs", "2", "--finetune", "1", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dilations :" in out
        assert "val loss  :" in out

    def test_search_saves_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ckpt.npz"
        main(["search", "--benchmark", "ppg", "--width", "0.1",
              "--lam", "0.0", "--warmup", "0", "--epochs", "1",
              "--finetune", "0", "--quiet", "--save", str(path)])
        assert path.exists()
        from repro.nn.serialization import load_state
        _, metadata = load_state(path)
        assert metadata["benchmark"] == "ppg"
        assert "dilations" in metadata


class TestSweep:
    def test_sweep_prints_front(self, capsys):
        code = main(["sweep", "--benchmark", "ppg", "--width", "0.1",
                     "--lambdas", "0", "1.0", "--gamma-lr", "0.1",
                     "--warmup", "0", "--epochs", "2", "--finetune", "0",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pareto front" in out
        assert "lambda" in out
