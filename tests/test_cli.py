"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def restore_conv_backend():
    """`main --conv-backend` sets the process default and exports
    REPRO_CONV_BACKEND for worker processes; undo both after each test."""
    from repro.autograd import current_backend, set_backend
    from repro.autograd.backends import ENV_VAR
    previous = current_backend()
    had_env = os.environ.get(ENV_VAR)
    yield
    set_backend(previous)
    if had_env is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = had_env


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.benchmark == "ppg"
        assert args.width == 0.25
        assert args.lam == 0.02

    def test_invalid_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--benchmark", "imagenet"])

    def test_lambda_list(self):
        args = build_parser().parse_args(["sweep", "--lambdas", "0", "0.1"])
        assert args.lambdas == [0.0, 0.1]


class TestInfo:
    def test_ppg_info(self, capsys):
        assert main(["info", "--benchmark", "ppg", "--width", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "search space   : 10800" in out
        assert "searchable convs: 7" in out

    def test_music_info(self, capsys):
        assert main(["info", "--benchmark", "music", "--width", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "search space   : 129600" in out
        assert "rf_max= 33" in out


class TestDeploy:
    def test_deploy_default_dilations(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "all-1" in out
        assert "ms" in out

    def test_deploy_custom_dilations(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125",
                     "--dilations", "2", "2", "1", "4", "4", "8", "8"]) == 0
        out = capsys.readouterr().out
        assert "(2, 2, 1, 4, 4, 8, 8)" in out

    def test_deploy_layer_breakdown(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125",
                     "--layers"]) == 0
        out = capsys.readouterr().out
        assert "conv1d" in out
        assert "linear" in out

    def test_deploy_wrong_dilation_count(self):
        with pytest.raises(ValueError):
            main(["deploy", "--benchmark", "ppg", "--dilations", "2", "2"])

    def test_deploy_renders_table_iii(self, capsys):
        """deploy now runs the full pipeline: int8 quantization + GAP8
        estimate, rendered as a paper-style Table III row."""
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "int8 loss" in out
        assert "latency [ms]" in out
        assert "energy [mJ]" in out

    def test_deploy_no_quantize(self, capsys):
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125",
                     "--no-quantize"]) == 0
        assert "latency [ms]" in capsys.readouterr().out

    def test_deploy_loads_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ckpt.npz"
        main(["train", "--benchmark", "ppg", "--width", "0.125",
              "--epochs", "1", "--patience", "1", "--save", str(path)])
        capsys.readouterr()
        assert main(["deploy", "--benchmark", "ppg", "--width", "0.125",
                     "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"loaded    : {path}" in out


class TestSearch:
    def test_search_runs_and_reports(self, capsys):
        code = main(["search", "--benchmark", "ppg", "--width", "0.1",
                     "--lam", "0.5", "--gamma-lr", "0.1", "--warmup", "0",
                     "--epochs", "2", "--finetune", "1", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dilations :" in out
        assert "val loss  :" in out

    def test_search_saves_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ckpt.npz"
        main(["search", "--benchmark", "ppg", "--width", "0.1",
              "--lam", "0.0", "--warmup", "0", "--epochs", "1",
              "--finetune", "0", "--quiet", "--save", str(path)])
        assert path.exists()
        from repro.nn.serialization import load_state
        _, metadata = load_state(path)
        assert metadata["benchmark"] == "ppg"
        assert "dilations" in metadata


class TestSweep:
    def test_sweep_prints_front(self, capsys):
        code = main(["sweep", "--benchmark", "ppg", "--width", "0.1",
                     "--lambdas", "0", "1.0", "--gamma-lr", "0.1",
                     "--warmup", "0", "--epochs", "2", "--finetune", "0",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pareto front" in out
        assert "lambda" in out

    def test_sweep_exposes_backend_and_compile(self, capsys):
        code = main(["sweep", "--benchmark", "ppg", "--width", "0.1",
                     "--lambdas", "0.5", "--gamma-lr", "0.1",
                     "--warmup", "0", "--epochs", "1", "--finetune", "0",
                     "--quiet", "--conv-backend", "im2col", "--compile"])
        assert code == 0
        assert "pareto front" in capsys.readouterr().out

    def test_sweep_hw_annotates_and_prints_3d_front(self, capsys, tmp_path):
        cache = tmp_path / "dse.json"
        argv = ["sweep", "--benchmark", "ppg", "--width", "0.1",
                "--lambdas", "0", "--gamma-lr", "0.1", "--warmup", "0",
                "--epochs", "1", "--finetune", "0", "--quiet", "--hw",
                "--cache", str(cache)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "int8 loss" in out
        assert "lat ms" in out
        assert "hw pareto front (params, latency_ms, loss)" in out

        # The cache recorded the deployment metrics...
        import json
        from repro.evaluation import DSECache
        payload = json.loads(cache.read_text())
        assert payload["version"] == DSECache.VERSION
        entry = next(iter(payload["points"].values()))
        assert entry["metrics"]["latency_ms"] > 0
        # ...and a re-run resumes from it (same printed result, no retrain).
        assert main(argv) == 0
        assert "hw pareto front" in capsys.readouterr().out


class TestTrain:
    def test_train_runs_and_reports(self, capsys):
        code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                     "--epochs", "1", "--patience", "1", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "val loss" in out
        assert "test loss" in out
        assert "all-1" in out

    def test_train_custom_dilations(self, capsys):
        code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                     "--epochs", "1", "--patience", "1", "--quiet",
                     "--dilations", "2", "2", "1", "4", "4", "8", "8"])
        assert code == 0
        assert "(2, 2, 1, 4, 4, 8, 8)" in capsys.readouterr().out

    def test_train_exposes_backend_knob(self, capsys):
        """The PR-1 --conv-backend knob must work on train like on sweep."""
        code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                     "--epochs", "1", "--patience", "1", "--quiet",
                     "--conv-backend", "im2col"])
        assert code == 0
        assert "val loss" in capsys.readouterr().out

    def test_train_compile_flag(self, capsys):
        code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                     "--epochs", "1", "--patience", "1", "--quiet",
                     "--compile"])
        assert code == 0
        assert "val loss" in capsys.readouterr().out

    def test_train_graph_opt_flag(self, capsys):
        for level in ("default", "none"):
            code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                         "--epochs", "1", "--patience", "1", "--quiet",
                         "--compile", "--graph-opt", level])
            assert code == 0
            assert "val loss" in capsys.readouterr().out

    def test_train_saves_checkpoint(self, tmp_path):
        path = tmp_path / "plain.npz"
        main(["train", "--benchmark", "ppg", "--width", "0.1",
              "--epochs", "1", "--patience", "1", "--quiet",
              "--save", str(path)])
        assert path.exists()

    def test_compile_defaults_parse(self):
        args = build_parser().parse_args(["train"])
        assert args.compile is False
        args = build_parser().parse_args(["search", "--compile"])
        assert args.compile is True
        args = build_parser().parse_args(["sweep", "--compile"])
        assert args.compile is True

    def test_graph_opt_parse(self):
        # None lets REPRO_GRAPH_OPT decide; explicit levels pass through.
        for command in ("train", "search", "sweep"):
            args = build_parser().parse_args([command])
            assert args.graph_opt is None
            args = build_parser().parse_args([command, "--graph-opt", "none"])
            assert args.graph_opt == "none"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--graph-opt", "O3"])

    def test_graph_exec_parse(self):
        # None lets REPRO_GRAPH_EXEC decide; explicit modes pass through.
        for command in ("train", "search", "sweep"):
            args = build_parser().parse_args([command])
            assert args.graph_exec is None
            assert args.dump_graph_source is None
            assert args.verbose is False
            args = build_parser().parse_args(
                [command, "--graph-exec", "source"])
            assert args.graph_exec == "source"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--graph-exec", "cython"])

    def test_train_graph_exec_verbose_and_dump(self, capsys, tmp_path):
        dump = tmp_path / "program.py"
        code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                     "--epochs", "1", "--patience", "1", "--quiet",
                     "--compile", "--graph-exec", "source", "--verbose",
                     "--dump-graph-source", str(dump)])
        assert code == 0
        out = capsys.readouterr().out
        # --verbose surfaces the compile diagnostics...
        assert "graph_exec=source" in out
        assert "executor=source" in out
        assert "codegen cache" in out
        assert "alloc:" in out
        # ...and the dump holds compilable generated source.
        assert dump.exists()
        text = dump.read_text()
        assert "def _factory(C):" in text
        compile(text, str(dump), "exec")

    def test_train_verbose_without_compile_explains(self, capsys, monkeypatch):
        # An eager step has no diagnostics; --verbose must say why.
        # REPRO_LOOP_CAPTURE implies compilation, so clear it too.
        monkeypatch.delenv("REPRO_COMPILE_STEP", raising=False)
        monkeypatch.delenv("REPRO_LOOP_CAPTURE", raising=False)
        code = main(["train", "--benchmark", "ppg", "--width", "0.1",
                     "--epochs", "1", "--patience", "1", "--quiet",
                     "--verbose"])
        assert code == 0
        assert "step ran eagerly" in capsys.readouterr().out

    def test_search_graph_exec_flag(self, capsys):
        code = main(["search", "--benchmark", "ppg", "--width", "0.1",
                     "--lam", "0.0", "--warmup", "1", "--epochs", "1",
                     "--finetune", "1", "--quiet", "--compile",
                     "--graph-exec", "source", "--verbose"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dilations :" in out
        for phase in ("warmup", "prune", "finetune"):
            assert f"[compile:{phase}]" in out

    def test_sweep_graph_exec_flag(self, capsys):
        code = main(["sweep", "--benchmark", "ppg", "--width", "0.1",
                     "--lambdas", "0.5", "--gamma-lr", "0.1",
                     "--warmup", "0", "--epochs", "1", "--finetune", "0",
                     "--quiet", "--compile", "--graph-exec", "source"])
        assert code == 0
        assert "pareto front" in capsys.readouterr().out


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.capacity == 8
        assert args.port == 0
        assert args.queue_size == 64
        assert args.max_sessions is None
        assert not args.quantize

    def test_serve_round_trip_over_tcp(self, capsys):
        import asyncio
        import socket
        import threading
        import time

        from repro.models import restcn_fixed
        from repro.serving import StreamingExecutor
        from repro.serving.client import stream_samples

        with socket.socket() as probe:  # reserve a free port
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        argv = ["serve", "--benchmark", "music", "--width", "0.05",
                "--seed", "0", "--port", str(port), "--capacity", "2",
                "--max-sessions", "1"]
        worker = threading.Thread(target=main, args=(argv,), daemon=True)
        worker.start()

        samples = np.random.default_rng(4).standard_normal((5, 88))

        async def client():
            deadline = time.monotonic() + 15
            while True:
                try:
                    return await stream_samples("127.0.0.1", port, samples)
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    await asyncio.sleep(0.05)

        result = asyncio.run(client())
        worker.join(timeout=15)
        assert not worker.is_alive()

        assert result["error"] is None
        assert len(result["frames"]) == 5
        # The served frames are what a dedicated fresh stream produces for
        # the same fixed model (same benchmark/width/seed).
        model = restcn_fixed(None, width_mult=0.05, seed=0)
        out = StreamingExecutor(model).push(samples.T[None])
        for i, msg in enumerate(result["frames"]):
            assert np.allclose(msg["data"], out[0, :, i], atol=1e-6)


class TestReliabilityFlags:
    def test_sweep_reliability_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.retries == 0
        assert args.point_timeout is None

    def test_sweep_reliability_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--retries", "2", "--point-timeout", "30.5"])
        assert args.retries == 2
        assert args.point_timeout == 30.5

    def test_serve_client_timeout_flag(self):
        args = build_parser().parse_args(["serve"])
        assert args.client_timeout is None
        args = build_parser().parse_args(["serve", "--client-timeout", "5"])
        assert args.client_timeout == 5.0
