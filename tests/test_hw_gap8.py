"""Tests for the GAP8 SoC performance/energy model and deployment flow."""

import numpy as np
import pytest

from repro.core import export_network, pit_layers
from repro.data import ArrayDataset, DataLoader
from repro.hw import GAP8Config, GAP8Model, deploy
from repro.models import (
    restcn_fixed,
    restcn_hand_tuned,
    temponet_fixed,
    temponet_hand_tuned,
    temponet_seed,
)
from repro.nn import CausalConv1d, ReLU, Sequential, mse_loss

RNG = np.random.default_rng(88)


def tiny_net(dilation=1):
    rng = np.random.default_rng(0)
    return Sequential(
        CausalConv1d(2, 4, 3, dilation=dilation, rng=rng), ReLU(),
        CausalConv1d(4, 2, 3, dilation=dilation, rng=rng))


class TestGAP8Config:
    def test_mac_rate_decreases_with_dilation(self):
        cfg = GAP8Config()
        rates = [cfg.mac_rate(d) for d in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_mac_rate_d1_is_base(self):
        cfg = GAP8Config(mac_rate_d1=5.0)
        assert cfg.mac_rate(1) == pytest.approx(5.0)

    def test_memory_sizes_match_gap8(self):
        cfg = GAP8Config()
        assert cfg.l1_bytes == 64 * 1024
        assert cfg.l2_bytes == 512 * 1024
        assert cfg.cluster_cores == 8
        assert cfg.frequency_hz == pytest.approx(100e6)


class TestGAP8Model:
    def test_report_fields(self):
        report = GAP8Model().estimate(tiny_net(), (1, 2, 16))
        assert report.latency_ms > 0
        assert report.energy_mj > 0
        assert report.total_macs > 0
        assert report.total_weight_bytes > 0
        assert len(report.layers) == 2
        assert "MMAC" in report.summary()

    def test_rejects_searchable_models(self):
        seed = temponet_seed(width_mult=0.125, seed=0)
        with pytest.raises(ValueError):
            GAP8Model().estimate(seed, (1, 4, 256))

    def test_accepts_exported_models(self):
        seed = temponet_seed(width_mult=0.125, seed=0)
        exported = export_network(seed)
        report = GAP8Model().estimate(exported, (1, 4, 256))
        assert report.latency_ms > 0

    def test_mac_count_exact(self):
        report = GAP8Model().estimate(tiny_net(), (1, 2, 16))
        # conv1: 2*4*3*16, conv2: 4*2*3*16.
        assert report.total_macs == 2 * 4 * 3 * 16 + 4 * 2 * 3 * 16

    def test_weight_bytes_int8_plus_int32_bias(self):
        report = GAP8Model().estimate(tiny_net(), (1, 2, 16))
        expected = (4 * 2 * 3 + 2 * 4 * 3) + 4 * (4 + 2)
        assert report.total_weight_bytes == expected

    def test_energy_follows_constant_power(self):
        """Table III satisfies E = P * latency with P = 262 mW."""
        report = GAP8Model().estimate(tiny_net(), (1, 2, 16))
        assert report.energy_mj == pytest.approx(0.262 * report.latency_ms, rel=1e-9)

    def test_longer_input_costs_more(self):
        model = GAP8Model()
        short = model.estimate(tiny_net(), (1, 2, 16)).latency_ms
        long = model.estimate(tiny_net(), (1, 2, 64)).latency_ms
        assert long > short

    def test_dilation_throughput_penalty(self):
        """Same MACs, higher dilation -> strictly more cycles."""
        model = GAP8Model()
        d1 = model.estimate(tiny_net(dilation=1), (1, 2, 32))
        d4 = model.estimate(tiny_net(dilation=4), (1, 2, 32))
        assert d1.total_macs == d4.total_macs
        assert d4.latency_ms > d1.latency_ms

    def test_l3_spill_detection(self):
        big = restcn_fixed(None)  # ~2.8 MB of weights > 512 kB L2
        report = GAP8Model().estimate(big, (1, 88, 16))
        assert not report.fits_l2
        small = temponet_hand_tuned()
        report2 = GAP8Model().estimate(small, (1, 4, 256))
        assert report2.fits_l2

    def test_untraced_network_raises(self):
        net = tiny_net()
        model = GAP8Model()
        # Bypass tracing by calling the private cost directly on a fresh net.
        with pytest.raises(RuntimeError):
            model._layer_cost("c", Sequential(CausalConv1d(1, 1, 1))[0], True)


class TestPaperCalibration:
    """The model constants are calibrated to the published seed numbers;
    these tests pin the calibration within loose tolerances (see DESIGN.md)."""

    def test_restcn_seed_latency(self):
        report = GAP8Model().estimate(restcn_fixed(None), (1, 88, 128))
        assert report.latency_ms == pytest.approx(1002, rel=0.15)

    def test_restcn_hand_latency(self):
        report = GAP8Model().estimate(restcn_hand_tuned(), (1, 88, 128))
        assert report.latency_ms == pytest.approx(500, rel=0.20)

    def test_temponet_seed_latency(self):
        report = GAP8Model().estimate(temponet_fixed(None), (1, 4, 256))
        assert report.latency_ms == pytest.approx(112.6, rel=0.15)

    def test_temponet_hand_latency(self):
        report = GAP8Model().estimate(temponet_hand_tuned(), (1, 4, 256))
        assert report.latency_ms == pytest.approx(58.8, rel=0.20)

    def test_sublinear_latency_vs_size(self):
        """Paper Table III: 3.36x fewer params -> only ~2x lower latency."""
        model = GAP8Model()
        seed = restcn_fixed(None)
        hand = restcn_hand_tuned()
        size_ratio = seed.count_parameters() / hand.count_parameters()
        latency_ratio = (model.estimate(seed, (1, 88, 128)).latency_ms
                         / model.estimate(hand, (1, 88, 128)).latency_ms)
        assert latency_ratio < size_ratio
        assert latency_ratio > 1.5


class TestDeploy:
    def test_full_flow(self):
        rng = np.random.default_rng(0)
        net = tiny_net()
        data = ArrayDataset(RNG.standard_normal((8, 2, 16)),
                            RNG.standard_normal((8, 2, 16)))
        loader = DataLoader(data, 4)
        report = deploy(net, mse_loss, loader, loader, (1, 2, 16), name="tiny")
        assert report.name == "tiny"
        assert report.params == net.count_parameters()
        assert report.latency_ms > 0
        assert np.isfinite(report.quantized_loss)
        # int8 quantization should not explode the loss.
        assert report.quantized_loss == pytest.approx(report.float_loss, rel=0.2)
        assert "tiny" in report.row()

    def test_deploy_exports_searchable_models(self):
        seed = temponet_seed(width_mult=0.125, seed=0)
        data = ArrayDataset(RNG.standard_normal((6, 4, 256)),
                            RNG.standard_normal((6, 1)))
        loader = DataLoader(data, 3)
        report = deploy(seed, mse_loss, loader, loader, (1, 4, 256))
        assert report.params < seed.count_parameters()

    def test_deploy_without_quantization(self):
        net = tiny_net()
        data = ArrayDataset(RNG.standard_normal((4, 2, 16)),
                            RNG.standard_normal((4, 2, 16)))
        loader = DataLoader(data, 2)
        report = deploy(net, mse_loss, loader, loader, (1, 2, 16), quantize=False)
        assert report.quantized_loss == report.float_loss
