"""Edge-case tests for the autograd engine discovered during integration."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    concatenate,
    conv1d_causal,
    no_grad,
    stack,
    where,
)

RNG = np.random.default_rng(555)


class TestGraphTopology:
    def test_shared_subexpression_single_backward(self):
        """A node used by two consumers propagates exactly once."""
        a = Tensor(2.0, requires_grad=True)
        shared = a * 3          # used twice below
        out = shared * shared   # d/da = 2 * 3a * 3 = 18a = 36
        out.backward()
        assert a.grad == pytest.approx(36.0)

    def test_backward_twice_accumulates(self):
        a = Tensor(1.0, requires_grad=True)
        out = a * 5
        out.backward()
        out2 = a * 5
        out2.backward()
        assert a.grad == pytest.approx(10.0)

    def test_detached_branch_blocks_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3).detach()
        out = (a + b).sum()
        out.backward()
        assert np.allclose(a.grad, [1.0])  # only the direct path

    def test_mixed_grad_and_nograd_inputs(self):
        a = Tensor(RNG.standard_normal((3,)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3,)))  # constant
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert b.grad is None

    def test_grad_inside_no_grad_composes(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * 3
        with no_grad():
            frozen = b * 10  # not recorded
        out = b + Tensor(frozen.data)
        out.backward()
        assert a.grad == pytest.approx(3.0)

    def test_scalar_times_empty_like_shapes(self):
        a = Tensor(np.zeros((0, 3)), requires_grad=True)
        out = (a * 2).sum()
        out.backward()
        assert a.grad.shape == (0, 3)


class TestIndexingEdgeCases:
    def test_negative_step_slice(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        out = a[::-1]
        assert out.data.tolist() == [4, 3, 2, 1, 0]
        (out * Tensor(np.arange(5.0))).sum().backward()
        # grad[i] = weight of reversed position = 4 - i
        assert a.grad.tolist() == [4, 3, 2, 1, 0]

    def test_boolean_mask_indexing(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        out = a[mask]
        out.sum().backward()
        assert a.grad.tolist() == [1, 0, 1, 0]

    def test_index_array_flip_used_by_pitconv(self):
        """The mask flip in PITConv1d relies on fancy-index gradients."""
        a = Tensor(np.arange(6.0), requires_grad=True)
        flip = np.arange(6)[::-1].copy()
        out = a[flip] * Tensor(np.array([1.0, 0, 0, 0, 0, 0]))
        out.sum().backward()
        # Only position 5 (flipped to 0) gets gradient.
        assert a.grad.tolist() == [0, 0, 0, 0, 0, 1]

    def test_scalar_index(self):
        a = Tensor(np.arange(3.0), requires_grad=True)
        a[1].backward(np.array(2.0))
        assert a.grad.tolist() == [0, 2, 0]


class TestBroadcastingEdgeCases:
    def test_scalar_broadcast_against_3d(self):
        a = Tensor(RNG.standard_normal((2, 3, 4)), requires_grad=True)
        s = Tensor(2.5, requires_grad=True)
        check_gradients(lambda x, y: x * y, [a, s])

    def test_double_broadcast(self):
        a = Tensor(RNG.standard_normal((1, 3, 1)), requires_grad=True)
        b = Tensor(RNG.standard_normal((2, 1, 4)), requires_grad=True)
        check_gradients(lambda x, y: x + y, [a, b])

    def test_where_with_scalar_branches(self):
        cond = np.array([True, False, True])
        a = Tensor(1.5, requires_grad=True)
        b = Tensor(-1.5, requires_grad=True)
        out = where(cond, a, b)
        out.sum().backward()
        assert a.grad == pytest.approx(2.0)
        assert b.grad == pytest.approx(1.0)


class TestConvEdgeCases:
    def test_single_timestep_input(self):
        x = Tensor(RNG.standard_normal((1, 2, 1)), requires_grad=True)
        w = Tensor(RNG.standard_normal((3, 2, 4)), requires_grad=True)
        out = conv1d_causal(x, w, dilation=2)
        assert out.shape == (1, 3, 1)
        check_gradients(lambda x, w: conv1d_causal(x, w, dilation=2), [x, w])

    def test_kernel_longer_than_input(self):
        """Causal padding makes any kernel length valid."""
        x = Tensor(RNG.standard_normal((1, 1, 3)))
        w = Tensor(RNG.standard_normal((1, 1, 10)))
        out = conv1d_causal(x, w)
        assert out.shape == (1, 1, 3)

    def test_dilation_larger_than_input(self):
        x = Tensor(np.ones((1, 1, 4)))
        w = Tensor(np.ones((1, 1, 2)))
        out = conv1d_causal(x, w, dilation=8)
        # Lag-8 tap always reads padding: output equals the lag-0 tap alone.
        assert np.allclose(out.data, 1.0)

    def test_batch_of_one_and_many_match(self):
        x = RNG.standard_normal((4, 2, 10))
        w = Tensor(RNG.standard_normal((3, 2, 3)))
        full = conv1d_causal(Tensor(x), w, dilation=2).data
        singles = [conv1d_causal(Tensor(x[i:i + 1]), w, dilation=2).data
                   for i in range(4)]
        assert np.allclose(full, np.concatenate(singles))


class TestStackConcatEdgeCases:
    def test_concat_single_tensor(self):
        a = Tensor(RNG.standard_normal((2, 3)), requires_grad=True)
        out = concatenate([a], axis=0)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_stack_negative_axis(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.ones((2, 3)))
        out = stack([a, b], axis=-1)
        assert out.shape == (2, 3, 2)

    def test_concat_mixed_grad_flags(self):
        a = Tensor(RNG.standard_normal((2,)), requires_grad=True)
        b = Tensor(RNG.standard_normal((3,)))
        out = concatenate([a, b])
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert b.grad is None
