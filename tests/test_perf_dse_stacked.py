"""Perf smoke: stacked DSE execution vs the sequential grid.

Marked ``perf`` and skipped in the tier-1 run; enable with::

    REPRO_RUN_PERF=1 PYTHONPATH=src python -m pytest tests/test_perf_dse_stacked.py -q -s

Times the full 8-point λ sweep end to end at stack widths {1, 4, 8} with
the *interleaved min-of-reps* methodology of ``BENCH_graph_executor``
(PR 4): every width runs once per round, round-robin, so CPU frequency
drift cannot masquerade as a stacking speedup — and the minimum over
rounds is reported per width.  The schedule is fixed (patience never
trips), so every width performs identical training work; only the
execution strategy differs.  Records ``BENCH_dse_stacked.json`` in the
repository root and asserts the width-8 stack beats the sequential path
by ``TARGET_SPEEDUP``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import PITConv1d
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import DSEEngine
from repro.nn import BatchNorm1d, CausalConv1d, Module, ReLU, mse_loss

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(not os.environ.get("REPRO_RUN_PERF"),
                       reason="perf smoke test; set REPRO_RUN_PERF=1 to run"),
]

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_dse_stacked.json")

#: The paper's sweep shape: 8 λ values, one warmup — every point trains
#: the same small TCN, so per-model GEMMs are tiny and per-op dispatch
#: dominates: exactly the regime stacking amortizes M-fold.
LAMBDAS = [0.0, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0]
WIDTHS = (1, 4, 8)
TARGET_SPEEDUP = 2.0     # width-8 stack vs sequential, same machine
REPS = 3

# Fixed-length schedule: patience larger than the epoch caps, so early
# stopping never trips and every width does identical training work.
SCHEDULE = dict(lr=1e-3, gamma_lr=0.1, max_prune_epochs=3,
                finetune_epochs=2, prune_patience=10, finetune_patience=10,
                warmup_epochs=1)


class BenchSeed(Module):
    """A small 3-conv TCN (the Fig. 4 sweep's workload shape)."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c1 = PITConv1d(4, 8, rf_max=9, rng=rng)
        self.bn1 = BatchNorm1d(8)
        self.r1 = ReLU()
        self.c2 = PITConv1d(8, 8, rf_max=17, rng=rng)
        self.r2 = ReLU()
        self.head = CausalConv1d(8, 1, 1, rng=rng)

    def forward(self, x):
        return self.head(self.r2(self.c2(self.r1(self.bn1(self.c1(x))))))


def _loaders(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((48, 4, 32))
    y = 0.25 * x[:, :1, :] + 0.5 * np.roll(x[:, 1:2, :], 2, axis=2)
    train = DataLoader(ArrayDataset(x[:32], y[:32]), 8, shuffle=True,
                       rng=np.random.default_rng(seed + 1))
    val = DataLoader(ArrayDataset(x[32:], y[32:]), 8)
    return train, val


def _run_sweep(width):
    train, val = _loaders()
    engine = DSEEngine(BenchSeed, mse_loss, train, val, stack=width,
                       trainer_kwargs=dict(SCHEDULE))
    start = time.perf_counter()
    result = engine.run(LAMBDAS, warmups=[1])
    return time.perf_counter() - start, result


def test_stacked_sweep_speedup():
    best = {width: float("inf") for width in WIDTHS}
    results = {}
    # Warm-up round (BLAS thread pools, allocator) + timed rounds, every
    # width per round — the interleaving is load-bearing (see module doc).
    for rep in range(REPS + 1):
        for width in WIDTHS:
            seconds, result = _run_sweep(width)
            results[width] = result
            if rep >= 1:
                best[width] = min(best[width], seconds)

    # Per-point results must agree across widths (fp tolerance) — a
    # speedup that changes the science is a bug, not a feature.
    reference = results[1]
    for width in WIDTHS[1:]:
        for pa, pb in zip(reference.points, results[width].points):
            assert pa.dilations == pb.dilations, width
            assert pa.params == pb.params, width
            assert np.allclose(pa.loss, pb.loss, atol=1e-6, rtol=1e-6), width

    payload = {
        "grid": {"lambdas": LAMBDAS, "warmups": [1]},
        "model": "2xPITConv(4->8->8, rf 9/17) + BN + head, T=32, batch=8",
        "schedule": SCHEDULE,
        "reps": REPS,
        "timing": "interleaved min-of-reps (full sweep wall-clock)",
        "rows": [
            {"stack": width,
             "sweep_seconds": best[width],
             "speedup_vs_sequential": best[1] / best[width]}
            for width in WIDTHS
        ],
    }
    with open(os.path.abspath(RESULT_PATH), "w") as handle:
        json.dump(payload, handle, indent=2)

    for row in payload["rows"]:
        print(f"\nstack={row['stack']}: {row['sweep_seconds']:.2f} s "
              f"({row['speedup_vs_sequential']:.2f}x)")

    speedup = best[1] / best[8]
    assert speedup >= TARGET_SPEEDUP, (
        f"stacked sweep speedup regressed: {speedup:.2f}x < "
        f"{TARGET_SPEEDUP}x ({best[1]:.2f} s vs {best[8]:.2f} s)")
