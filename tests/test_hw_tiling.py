"""Tests for the L1 tiling solver."""

import pytest

from repro.hw.tiling import (
    TileSpec,
    conv_bytes,
    find_tiling,
    layer_working_set,
    tiling_traffic,
)

L1 = 64 * 1024


class TestSizes:
    def test_conv_bytes(self):
        sizes = conv_bytes(c_in=4, c_out=8, k=3, t_in=16, t_out=16)
        assert sizes["weights"] == 8 * 4 * 3 + 8 * 4
        assert sizes["input"] == 4 * 16
        assert sizes["output"] == 8 * 16

    def test_layer_working_set(self):
        ws = layer_working_set(4, 8, 3, 16, 16)
        assert ws == (8 * 4 * 3 + 32) + 64 + 128


class TestFindTiling:
    def test_small_layer_untiled(self):
        tile = find_tiling(c_in=4, c_out=8, k=3, dilation=1, t_out=32)
        assert tile.is_untiled
        assert tile.weights_resident
        assert tile.channels == 8
        assert tile.time == 32

    def test_large_layer_gets_tiled(self):
        # 150x150x33 int8 weights = 742 kB >> 64 kB.
        tile = find_tiling(c_in=150, c_out=150, k=33, dilation=1, t_out=128)
        assert not tile.is_untiled
        assert tile.channels < 150

    def test_tile_fits_l1(self):
        for args in [(150, 150, 33, 1, 128), (88, 150, 5, 1, 128),
                     (64, 128, 17, 1, 64), (512, 512, 9, 2, 64)]:
            tile = find_tiling(*args)
            assert tile is not None
            assert tile.working_set_bytes <= L1

    def test_time_tiling_before_channel_tiling(self):
        """Medium layers shrink time first, keeping all weights resident."""
        # Weights 32*64*9 = 18 kB fit easily; a huge T forces time tiling.
        tile = find_tiling(c_in=32, c_out=64, k=9, dilation=1, t_out=100_000)
        assert tile.channels == 64
        assert tile.time < 100_000
        assert tile.weights_resident

    def test_impossible_tiling_returns_none(self):
        # A single output-channel slice of weights already exceeds L1.
        tile = find_tiling(c_in=70_000, c_out=4, k=1, dilation=1, t_out=4)
        assert tile is None

    def test_custom_l1_budget(self):
        generous = find_tiling(150, 150, 33, 1, 128, l1_bytes=10 * 1024 * 1024)
        assert generous.is_untiled

    def test_halo_accounted(self):
        """Higher dilation inflates the input halo, shrinking the tile."""
        small_halo = find_tiling(64, 64, 9, 1, 4096)
        big_halo = find_tiling(64, 64, 9, 8, 4096)
        assert big_halo.working_set_bytes <= L1
        assert (big_halo.channels, big_halo.time) <= (small_halo.channels,
                                                      small_halo.time)

    def test_unfittable_halo_returns_none(self):
        """A receptive field whose halo alone exceeds L1 cannot tile."""
        assert find_tiling(64, 64, 9, 64, 4096) is None


class TestTilingTraffic:
    def test_untiled_traffic_is_operand_sizes(self):
        tile = find_tiling(4, 8, 3, 1, 32)
        traffic = tiling_traffic(4, 8, 3, 1, 32, 32, tile)
        weights = 8 * 4 * 3 + 8 * 4
        halo = 2
        assert traffic == 4 * (32 + halo) + 8 * 32 + weights

    def test_channel_passes_reread_input(self):
        """Channel tiling multiplies input traffic by the number of passes."""
        tile_full = TileSpec(channels=8, time=32, num_tiles=1,
                             weights_resident=True, working_set_bytes=0)
        tile_half = TileSpec(channels=4, time=32, num_tiles=2,
                             weights_resident=False, working_set_bytes=0)
        full = tiling_traffic(16, 8, 3, 1, 32, 32, tile_full)
        half = tiling_traffic(16, 8, 3, 1, 32, 32, tile_half)
        assert half > full

    def test_time_tiles_pay_halo_once_each(self):
        tile_one = TileSpec(channels=8, time=32, num_tiles=1,
                            weights_resident=True, working_set_bytes=0)
        tile_four = TileSpec(channels=8, time=8, num_tiles=4,
                             weights_resident=True, working_set_bytes=0)
        one = tiling_traffic(4, 8, 5, 2, 32, 32, tile_one)
        four = tiling_traffic(4, 8, 5, 2, 32, 32, tile_four)
        halo = (5 - 1) * 2
        assert four - one == 4 * halo * 3  # 3 extra halos * c_in

    def test_weights_move_once(self):
        """Weight traffic is independent of the tiling decision."""
        tile_a = find_tiling(150, 150, 33, 1, 128)
        traffic = tiling_traffic(150, 150, 33, 1, 128, 128, tile_a)
        weights = 150 * 150 * 33 + 150 * 4
        assert traffic > weights  # sanity: weights are included exactly once


class TestGAP8Integration:
    def test_tiling_toggle_changes_memory_term(self):
        import numpy as np
        from repro.hw import GAP8Config, GAP8Model
        from repro.models import restcn_fixed

        net = restcn_fixed(None)  # large layers -> tiling matters
        with_tiling = GAP8Model(GAP8Config(use_tiling=True)).estimate(
            net, (1, 88, 128))
        without = GAP8Model(GAP8Config(use_tiling=False)).estimate(
            net, (1, 88, 128))
        assert with_tiling.latency_ms != without.latency_ms

    def test_calibration_holds_with_tiling(self):
        from repro.hw import GAP8Model
        from repro.models import restcn_fixed
        report = GAP8Model().estimate(restcn_fixed(None), (1, 88, 128))
        assert report.latency_ms == pytest.approx(1002, rel=0.15)
