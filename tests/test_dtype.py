"""Tests for the configurable default dtype (``repro.set_default_dtype``).

float32 halves memory traffic — it compounds with the compiled training
step — while gradient checking stays pinned to float64 so numerical
differentiation keeps meaning.
"""

import numpy as np
import pytest

import repro
from repro.autograd import (
    Tensor,
    check_gradients,
    default_dtype_scope,
    get_default_dtype,
    set_default_dtype,
)
from repro.data import ArrayDataset


@pytest.fixture(autouse=True)
def restore_dtype():
    # Pin the baseline on entry too, so these tests hold even when the
    # suite itself was launched under a REPRO_DTYPE override.
    set_default_dtype("float64")
    yield
    set_default_dtype("float64")


class TestConfiguration:
    def test_default_is_float64(self):
        assert get_default_dtype() is np.float64

    def test_set_by_name_and_dtype(self):
        set_default_dtype("float32")
        assert get_default_dtype() is np.float32
        set_default_dtype(np.float64)
        assert get_default_dtype() is np.float64

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError, match="unsupported dtype"):
            set_default_dtype("int32")
        with pytest.raises(ValueError):
            set_default_dtype("float16")

    def test_top_level_reexports(self):
        assert repro.get_default_dtype() is np.float64
        repro.set_default_dtype("float32")
        assert get_default_dtype() is np.float32

    def test_scope_restores(self):
        with default_dtype_scope("float32"):
            assert get_default_dtype() is np.float32
            with default_dtype_scope("float64"):
                assert get_default_dtype() is np.float64
            assert get_default_dtype() is np.float32
        assert get_default_dtype() is np.float64


class TestTensorDtype:
    def test_tensor_storage_follows_default(self):
        set_default_dtype("float32")
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32
        out = (t * 2.0 + 1.0).exp()
        assert out.dtype == np.float32

    def test_float64_inputs_are_downcast(self):
        set_default_dtype("float32")
        t = Tensor(np.arange(4, dtype=np.float64))
        assert t.dtype == np.float32

    def test_gradients_in_float32(self):
        set_default_dtype("float32")
        t = Tensor(np.ones(3), requires_grad=True)
        (t * t).sum().backward()
        assert t.grad.dtype == np.float32
        assert np.allclose(t.grad, 2.0)

    def test_training_step_in_float32(self):
        from repro.core.trainer import make_training_step
        from repro.nn import CausalConv1d, GlobalAvgPool1d, Linear, Sequential, mse_loss
        from repro.optim import Adam
        set_default_dtype("float32")
        rng = np.random.default_rng(0)
        model = Sequential(CausalConv1d(2, 4, 3, rng=rng),
                           GlobalAvgPool1d(), Linear(4, 1, rng=rng))
        step = make_training_step(model, mse_loss)
        optimizer = Adam(model.parameters())
        optimizer.zero_grad()
        loss, task = step(rng.standard_normal((4, 2, 8)),
                          rng.standard_normal((4, 1)))
        optimizer.step()
        assert np.isfinite(loss) and loss == task
        assert all(p.dtype == np.float32 for p in model.parameters())


class TestDataAndGradcheck:
    def test_array_dataset_follows_default(self):
        set_default_dtype("float32")
        data = ArrayDataset(np.zeros((4, 2)), np.zeros((4, 1)))
        assert data.inputs.dtype == np.float32
        assert data.targets.dtype == np.float32

    def test_gradcheck_pinned_to_float64(self):
        """check_gradients stays meaningful under a float32 default: the
        inputs are upcast and the whole comparison runs in float64."""
        set_default_dtype("float32")
        t = Tensor(np.array([0.3, -1.2, 2.0], dtype=np.float32),
                   requires_grad=True)
        check_gradients(lambda a: (a * a).exp(), [t])
        assert t.data.dtype == np.float64
        assert get_default_dtype() is np.float32  # scope restored

    def test_env_variable(self):
        import subprocess
        import sys
        code = ("import repro; from repro.autograd import get_default_dtype, Tensor; "
                "import numpy as np; "
                "assert get_default_dtype() is np.float32; "
                "assert Tensor([1.0]).dtype == np.float32; print('ok')")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_DTYPE": "float32", "PYTHONPATH": "src",
                 "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, cwd=".")
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_invalid_env_variable_fails_on_use_not_import(self):
        import subprocess
        import sys
        code = ("import repro.cli; "  # import must survive a bad REPRO_DTYPE
                "from repro.autograd import get_default_dtype\n"
                "try:\n"
                "    get_default_dtype()\n"
                "except ValueError as exc:\n"
                "    assert 'REPRO_DTYPE' in str(exc); print('ok')\n")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_DTYPE": "float128", "PYTHONPATH": "src",
                 "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, cwd=".")
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout
