"""Tests for int8 post-training quantization."""

import warnings

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import ArrayDataset, DataLoader
from repro.hw import (
    FakeQuant,
    QuantWrapper,
    fake_quantize,
    quantization_error,
    quantize_array,
    quantize_network,
)
from repro.nn import CausalConv1d, Linear, ReLU, Sequential

RNG = np.random.default_rng(77)


class TestQuantizeArray:
    def test_symmetric_codes_in_range(self):
        qa = quantize_array(RNG.standard_normal(1000), bits=8, symmetric=True)
        assert qa.q.min() >= -128
        assert qa.q.max() <= 127

    def test_affine_codes_in_range(self):
        qa = quantize_array(RNG.standard_normal(1000), bits=8, symmetric=False)
        assert qa.q.min() >= 0
        assert qa.q.max() <= 255

    def test_symmetric_never_emits_minus_128(self):
        # 255 live levels: the symmetric grid is [-127, 127]; -128 exists
        # in int8 but must never be produced, or the grid loses symmetry.
        x = np.array([-1.0, -0.999999, 1.0, 0.5])
        qa = quantize_array(x, bits=8, symmetric=True)
        assert qa.q.min() == -127
        assert qa.q.max() == 127

    def test_symmetric_scale_uses_127_levels(self):
        qa = quantize_array(np.array([-2.54, 2.54]), bits=8, symmetric=True)
        assert np.allclose(qa.scale, 2.54 / 127)

    def test_affine_zero_point_is_integer(self):
        qa = quantize_array(RNG.standard_normal(100), bits=8, symmetric=False)
        assert np.array_equal(qa.zero_point, np.round(qa.zero_point))

    def test_affine_uses_all_256_levels(self):
        # Full-scale ramp must hit both endpoint codes 0 and 255.
        qa = quantize_array(np.linspace(-1, 1, 1000), bits=8, symmetric=False)
        assert qa.q.min() == 0
        assert qa.q.max() == 255

    def test_symmetric_zero_point_is_zero(self):
        qa = quantize_array(RNG.standard_normal(10), symmetric=True)
        assert np.allclose(qa.zero_point, 0.0)

    def test_round_trip_error_bounded_by_half_step(self):
        x = RNG.standard_normal(500)
        qa = quantize_array(x, bits=8, symmetric=True)
        err = np.abs(qa.dequantize() - x)
        assert err.max() <= float(np.max(qa.scale)) / 2 + 1e-12

    def test_more_bits_less_error(self):
        x = RNG.standard_normal(500)
        e8 = np.abs(fake_quantize(x, bits=8) - x).max()
        e4 = np.abs(fake_quantize(x, bits=4) - x).max()
        assert e8 < e4

    def test_per_channel_scales(self):
        x = np.stack([np.ones(10) * 0.01, np.ones(10) * 100.0])
        qa = quantize_array(x, per_channel_axis=0)
        assert qa.scale.reshape(-1).shape == (2,)
        # Per-channel keeps the small channel accurate.
        assert np.allclose(qa.dequantize()[0], 0.01, rtol=0.01)

    def test_per_tensor_crushes_small_channel(self):
        x = np.stack([np.ones(10) * 0.01, np.ones(10) * 100.0])
        qa = quantize_array(x)  # per-tensor
        assert not np.allclose(qa.dequantize()[0], 0.01, rtol=0.2)

    def test_all_zero_input(self):
        qa = quantize_array(np.zeros(10))
        assert np.allclose(qa.dequantize(), 0.0)

    def test_constant_affine_input(self):
        qa = quantize_array(np.full(10, 3.0), symmetric=False)
        assert np.allclose(qa.dequantize(), 3.0, atol=0.05)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize_array(np.zeros(3), bits=1)
        with pytest.raises(ValueError):
            quantize_array(np.zeros(3), bits=17)


class TestFakeQuant:
    def test_calibration_records_range(self):
        fq = FakeQuant()
        fq(Tensor(np.array([-2.0, 3.0])))
        fq(Tensor(np.array([-5.0, 1.0])))
        assert fq.lo == -5.0
        assert fq.hi == 3.0

    def test_calibrating_is_identity(self):
        fq = FakeQuant()
        x = Tensor(RNG.standard_normal(10))
        assert fq(x) is x

    def test_quantizes_after_calibration(self):
        fq = FakeQuant(bits=2)  # 4 levels: quantization visible
        fq(Tensor(np.linspace(-1, 1, 100)))
        fq.calibrating = False
        out = fq(Tensor(np.linspace(-1, 1, 100)))
        assert len(np.unique(out.data)) <= 4

    def test_clamps_outliers(self):
        fq = FakeQuant()
        fq(Tensor(np.array([0.0, 1.0])))
        fq.calibrating = False
        out = fq(Tensor(np.array([10.0])))
        assert out.data[0] <= 1.0

    def test_uncalibrated_use_raises(self):
        # Regression: used to silently pass floats through, making a
        # never-calibrated "quantized" network indistinguishable from the
        # float one.
        fq = FakeQuant()
        fq.calibrating = False
        with pytest.raises(RuntimeError, match="without calibration"):
            fq(Tensor(np.array([1.0, 2.0])))

    def test_empty_calibration_batch_does_not_poison_range(self):
        fq = FakeQuant()
        fq(Tensor(np.zeros((0, 3))))  # empty batch: min/max undefined
        assert not fq.calibrated
        fq(Tensor(np.array([-1.0, 2.0])))
        assert fq.lo == -1.0 and fq.hi == 2.0

    def test_degenerate_range_collapses_to_constant(self):
        fq = FakeQuant()
        fq(Tensor(np.full(5, 3.0)))  # constant calibration -> hi == lo
        fq.calibrating = False
        assert fq.degenerate
        out = fq(Tensor(np.array([-10.0, 0.0, 99.0])))
        assert np.array_equal(out.data, np.full(3, 3.0))

    def test_matches_quantize_array_affine_grid(self):
        # FakeQuant's decode grid IS the affine quantize_array grid when
        # the calibration range equals the data range.
        x = RNG.standard_normal(200)
        fq = FakeQuant(bits=8)
        fq(Tensor(x))
        fq.calibrating = False
        expected = quantize_array(x, bits=8, symmetric=False).dequantize()
        assert np.allclose(fq(Tensor(x)).data, expected, atol=1e-12)

    def test_locked_affine_values(self):
        # Pin the integer-zero-point scheme: range [-1, 1], bits=8 gives
        # scale = 2/255 and zero_point = round(127.5) = 128, so 0.0 maps
        # to code 128 and decodes to exactly 0.0 (not the 0.0039-off value
        # the 256-level symmetric-midpoint variant would produce).  Forced
        # to float64: the endpoint codes sit on a round-half boundary that
        # float32 arithmetic resolves differently.
        from repro.autograd import default_dtype_scope
        with default_dtype_scope("float64"):
            fq = FakeQuant(bits=8)
            fq(Tensor(np.array([-1.0, 1.0])))
            fq.calibrating = False
            scale = 2.0 / 255.0
            out = fq(Tensor(np.array([-1.0, 0.0, 1.0, -2.0, 2.0]))).data
        assert out[1] == 0.0
        assert np.allclose(out, [(0 - 128) * scale, 0.0, (255 - 128) * scale,
                                 (0 - 128) * scale, (255 - 128) * scale])

    def test_zero_in_range_decodes_exactly(self):
        fq = FakeQuant(bits=8)
        fq(Tensor(np.array([-0.37, 1.73])))
        fq.calibrating = False
        assert fq(Tensor(np.array([0.0]))).data[0] == 0.0


class TestFakeQuantSerialization:
    """Calibrated ranges must survive save/load (they are buffers, not
    plain attributes — a reloaded quantized model used to silently run in
    float because lo/hi/calibrating were dropped by state_dict)."""

    def make_quantized(self, scale=1.0):
        rng = np.random.default_rng(0)
        net = Sequential(CausalConv1d(2, 4, 3, rng=rng), ReLU(),
                         CausalConv1d(4, 2, 3, rng=rng))
        data = ArrayDataset(scale * RNG.standard_normal((8, 2, 10)),
                            RNG.standard_normal((8, 2, 10)))
        return quantize_network(net, DataLoader(data, 4))

    def test_ranges_are_registered_buffers(self):
        quantized = self.make_quantized()
        state = quantized.state_dict()
        for name, module in quantized.named_modules():
            if isinstance(module, FakeQuant):
                assert f"{name}.lo" in state
                assert f"{name}.hi" in state
                assert f"{name}.calibrating" in state

    def test_state_dict_round_trip_restores_ranges(self):
        source = self.make_quantized(scale=1.0)
        target = self.make_quantized(scale=100.0)  # different calibration
        target.load_state_dict(source.state_dict())
        src_fq = [m for m in source.modules() if isinstance(m, FakeQuant)]
        dst_fq = [m for m in target.modules() if isinstance(m, FakeQuant)]
        for a, b in zip(src_fq, dst_fq):
            assert float(a.lo) == float(b.lo)
            assert float(a.hi) == float(b.hi)
            assert bool(a.calibrating) == bool(b.calibrating) is False

    def test_npz_round_trip_preserves_quantized_forward(self, tmp_path):
        from repro.nn.serialization import load_model, save_model
        source = self.make_quantized(scale=1.0)
        path = tmp_path / "quantized.npz"
        save_model(source, path)
        target = self.make_quantized(scale=100.0)
        load_model(target, path)
        x = Tensor(RNG.standard_normal((2, 2, 10)))
        assert np.array_equal(source(x).data, target(x).data)

    def test_assigning_calibrating_updates_the_buffer(self):
        fq = FakeQuant()
        fq(Tensor(np.array([0.0, 1.0])))
        fq.calibrating = False  # the quantize_network idiom
        assert not fq.state_dict()["calibrating"]


class TestQuantizeNetwork:
    def make_net_and_loader(self):
        rng = np.random.default_rng(0)
        net = Sequential(
            CausalConv1d(2, 4, 3, rng=rng), ReLU(),
            CausalConv1d(4, 2, 3, rng=rng))
        data = ArrayDataset(RNG.standard_normal((8, 2, 10)),
                            RNG.standard_normal((8, 2, 10)))
        return net, DataLoader(data, 4)

    def test_wraps_all_conv_and_linear(self):
        net, loader = self.make_net_and_loader()
        quantized = quantize_network(net, loader)
        wrappers = [m for m in quantized.modules() if isinstance(m, QuantWrapper)]
        assert len(wrappers) == 2

    def test_original_untouched(self):
        net, loader = self.make_net_and_loader()
        before = net[0].weight.data.copy()
        quantize_network(net, loader)
        assert np.allclose(net[0].weight.data, before)

    def test_calibration_completed(self):
        net, loader = self.make_net_and_loader()
        quantized = quantize_network(net, loader)
        for module in quantized.modules():
            if isinstance(module, FakeQuant):
                assert not module.calibrating
                assert np.isfinite(module.lo)

    def test_outputs_close_to_float(self):
        net, loader = self.make_net_and_loader()
        net.eval()
        quantized = quantize_network(net, loader)
        err = quantization_error(net, quantized, loader)
        assert err < 0.05  # int8 should be within a few percent

    def test_weights_are_quantized(self):
        net, loader = self.make_net_and_loader()
        quantized = quantize_network(net, loader, bits=4)
        conv = [m for m in quantized.modules() if isinstance(m, CausalConv1d)][0]
        # 4-bit weights: at most 16 distinct values per output channel.
        for ch in range(conv.weight.data.shape[0]):
            assert len(np.unique(conv.weight.data[ch])) <= 16

    def test_quantizes_linear_layers(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(4, 3, rng=rng))
        data = ArrayDataset(RNG.standard_normal((6, 4)), RNG.standard_normal((6, 3)))
        quantized = quantize_network(net, DataLoader(data, 3))
        assert isinstance(quantized[0], QuantWrapper)

    def test_empty_calibration_loader_raises(self):
        # Regression: an empty loader used to yield a float network
        # masquerading as quantized (every FakeQuant passed through).
        net, _ = self.make_net_and_loader()
        with pytest.raises(ValueError, match="no batches"):
            quantize_network(net, [])

    def test_degenerate_calibration_warns(self):
        rng = np.random.default_rng(0)
        net = Sequential(CausalConv1d(2, 4, 3, rng=rng))
        net[0].weight.data[...] = 0.0  # constant (zero) output everywhere
        net[0].bias.data[...] = 0.0
        data = ArrayDataset(RNG.standard_normal((8, 2, 10)),
                            RNG.standard_normal((8, 2, 10)))
        with pytest.warns(RuntimeWarning, match="degenerate"):
            quantize_network(net, DataLoader(data, 4))

    def test_healthy_calibration_does_not_warn(self):
        net, loader = self.make_net_and_loader()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            quantize_network(net, loader)

    def test_lower_bits_higher_error(self):
        net, loader = self.make_net_and_loader()
        net.eval()
        e8 = quantization_error(net, quantize_network(net, loader, bits=8), loader)
        e3 = quantization_error(net, quantize_network(net, loader, bits=3), loader)
        assert e3 > e8
