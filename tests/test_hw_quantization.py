"""Tests for int8 post-training quantization."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import ArrayDataset, DataLoader
from repro.hw import (
    FakeQuant,
    QuantWrapper,
    fake_quantize,
    quantization_error,
    quantize_array,
    quantize_network,
)
from repro.nn import CausalConv1d, Linear, ReLU, Sequential

RNG = np.random.default_rng(77)


class TestQuantizeArray:
    def test_symmetric_codes_in_range(self):
        qa = quantize_array(RNG.standard_normal(1000), bits=8, symmetric=True)
        assert qa.q.min() >= -128
        assert qa.q.max() <= 127

    def test_affine_codes_in_range(self):
        qa = quantize_array(RNG.standard_normal(1000), bits=8, symmetric=False)
        assert qa.q.min() >= 0
        assert qa.q.max() <= 255

    def test_symmetric_zero_point_is_zero(self):
        qa = quantize_array(RNG.standard_normal(10), symmetric=True)
        assert np.allclose(qa.zero_point, 0.0)

    def test_round_trip_error_bounded_by_half_step(self):
        x = RNG.standard_normal(500)
        qa = quantize_array(x, bits=8, symmetric=True)
        err = np.abs(qa.dequantize() - x)
        assert err.max() <= float(np.max(qa.scale)) / 2 + 1e-12

    def test_more_bits_less_error(self):
        x = RNG.standard_normal(500)
        e8 = np.abs(fake_quantize(x, bits=8) - x).max()
        e4 = np.abs(fake_quantize(x, bits=4) - x).max()
        assert e8 < e4

    def test_per_channel_scales(self):
        x = np.stack([np.ones(10) * 0.01, np.ones(10) * 100.0])
        qa = quantize_array(x, per_channel_axis=0)
        assert qa.scale.reshape(-1).shape == (2,)
        # Per-channel keeps the small channel accurate.
        assert np.allclose(qa.dequantize()[0], 0.01, rtol=0.01)

    def test_per_tensor_crushes_small_channel(self):
        x = np.stack([np.ones(10) * 0.01, np.ones(10) * 100.0])
        qa = quantize_array(x)  # per-tensor
        assert not np.allclose(qa.dequantize()[0], 0.01, rtol=0.2)

    def test_all_zero_input(self):
        qa = quantize_array(np.zeros(10))
        assert np.allclose(qa.dequantize(), 0.0)

    def test_constant_affine_input(self):
        qa = quantize_array(np.full(10, 3.0), symmetric=False)
        assert np.allclose(qa.dequantize(), 3.0, atol=0.05)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize_array(np.zeros(3), bits=1)
        with pytest.raises(ValueError):
            quantize_array(np.zeros(3), bits=17)


class TestFakeQuant:
    def test_calibration_records_range(self):
        fq = FakeQuant()
        fq(Tensor(np.array([-2.0, 3.0])))
        fq(Tensor(np.array([-5.0, 1.0])))
        assert fq.lo == -5.0
        assert fq.hi == 3.0

    def test_calibrating_is_identity(self):
        fq = FakeQuant()
        x = Tensor(RNG.standard_normal(10))
        assert fq(x) is x

    def test_quantizes_after_calibration(self):
        fq = FakeQuant(bits=2)  # 4 levels: quantization visible
        fq(Tensor(np.linspace(-1, 1, 100)))
        fq.calibrating = False
        out = fq(Tensor(np.linspace(-1, 1, 100)))
        assert len(np.unique(out.data)) <= 4

    def test_clamps_outliers(self):
        fq = FakeQuant()
        fq(Tensor(np.array([0.0, 1.0])))
        fq.calibrating = False
        out = fq(Tensor(np.array([10.0])))
        assert out.data[0] <= 1.0

    def test_uncalibrated_passthrough(self):
        fq = FakeQuant()
        fq.calibrating = False
        x = Tensor(np.array([1.0, 2.0]))
        assert np.allclose(fq(x).data, x.data)


class TestFakeQuantSerialization:
    """Calibrated ranges must survive save/load (they are buffers, not
    plain attributes — a reloaded quantized model used to silently run in
    float because lo/hi/calibrating were dropped by state_dict)."""

    def make_quantized(self, scale=1.0):
        rng = np.random.default_rng(0)
        net = Sequential(CausalConv1d(2, 4, 3, rng=rng), ReLU(),
                         CausalConv1d(4, 2, 3, rng=rng))
        data = ArrayDataset(scale * RNG.standard_normal((8, 2, 10)),
                            RNG.standard_normal((8, 2, 10)))
        return quantize_network(net, DataLoader(data, 4))

    def test_ranges_are_registered_buffers(self):
        quantized = self.make_quantized()
        state = quantized.state_dict()
        for name, module in quantized.named_modules():
            if isinstance(module, FakeQuant):
                assert f"{name}.lo" in state
                assert f"{name}.hi" in state
                assert f"{name}.calibrating" in state

    def test_state_dict_round_trip_restores_ranges(self):
        source = self.make_quantized(scale=1.0)
        target = self.make_quantized(scale=100.0)  # different calibration
        target.load_state_dict(source.state_dict())
        src_fq = [m for m in source.modules() if isinstance(m, FakeQuant)]
        dst_fq = [m for m in target.modules() if isinstance(m, FakeQuant)]
        for a, b in zip(src_fq, dst_fq):
            assert float(a.lo) == float(b.lo)
            assert float(a.hi) == float(b.hi)
            assert bool(a.calibrating) == bool(b.calibrating) is False

    def test_npz_round_trip_preserves_quantized_forward(self, tmp_path):
        from repro.nn.serialization import load_model, save_model
        source = self.make_quantized(scale=1.0)
        path = tmp_path / "quantized.npz"
        save_model(source, path)
        target = self.make_quantized(scale=100.0)
        load_model(target, path)
        x = Tensor(RNG.standard_normal((2, 2, 10)))
        assert np.array_equal(source(x).data, target(x).data)

    def test_assigning_calibrating_updates_the_buffer(self):
        fq = FakeQuant()
        fq(Tensor(np.array([0.0, 1.0])))
        fq.calibrating = False  # the quantize_network idiom
        assert not fq.state_dict()["calibrating"]


class TestQuantizeNetwork:
    def make_net_and_loader(self):
        rng = np.random.default_rng(0)
        net = Sequential(
            CausalConv1d(2, 4, 3, rng=rng), ReLU(),
            CausalConv1d(4, 2, 3, rng=rng))
        data = ArrayDataset(RNG.standard_normal((8, 2, 10)),
                            RNG.standard_normal((8, 2, 10)))
        return net, DataLoader(data, 4)

    def test_wraps_all_conv_and_linear(self):
        net, loader = self.make_net_and_loader()
        quantized = quantize_network(net, loader)
        wrappers = [m for m in quantized.modules() if isinstance(m, QuantWrapper)]
        assert len(wrappers) == 2

    def test_original_untouched(self):
        net, loader = self.make_net_and_loader()
        before = net[0].weight.data.copy()
        quantize_network(net, loader)
        assert np.allclose(net[0].weight.data, before)

    def test_calibration_completed(self):
        net, loader = self.make_net_and_loader()
        quantized = quantize_network(net, loader)
        for module in quantized.modules():
            if isinstance(module, FakeQuant):
                assert not module.calibrating
                assert np.isfinite(module.lo)

    def test_outputs_close_to_float(self):
        net, loader = self.make_net_and_loader()
        net.eval()
        quantized = quantize_network(net, loader)
        err = quantization_error(net, quantized, loader)
        assert err < 0.05  # int8 should be within a few percent

    def test_weights_are_quantized(self):
        net, loader = self.make_net_and_loader()
        quantized = quantize_network(net, loader, bits=4)
        conv = [m for m in quantized.modules() if isinstance(m, CausalConv1d)][0]
        # 4-bit weights: at most 16 distinct values per output channel.
        for ch in range(conv.weight.data.shape[0]):
            assert len(np.unique(conv.weight.data[ch])) <= 16

    def test_quantizes_linear_layers(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(4, 3, rng=rng))
        data = ArrayDataset(RNG.standard_normal((6, 4)), RNG.standard_normal((6, 3)))
        quantized = quantize_network(net, DataLoader(data, 3))
        assert isinstance(quantized[0], QuantWrapper)

    def test_lower_bits_higher_error(self):
        net, loader = self.make_net_and_loader()
        net.eval()
        e8 = quantization_error(net, quantize_network(net, loader, bits=8), loader)
        e3 = quantization_error(net, quantize_network(net, loader, bits=3), loader)
        assert e3 > e8
