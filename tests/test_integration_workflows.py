"""User-journey integration tests: search -> checkpoint -> reload -> deploy.

These mirror how a downstream user chains the library's pieces; each test
is a miniature of a workflow documented in README/examples.
"""

import numpy as np
import pytest

from repro import PITTrainer, export_network
from repro.core import evaluate, pit_layers
from repro.data import (
    Augmenter,
    ArrayDataset,
    DataLoader,
    PPGDaliaConfig,
    make_ppg_dalia,
    sliding_windows,
    train_val_test_split,
)
from repro.evaluation import ExperimentRegistry, format_table, run_dse
from repro.hw import GAP8Model, deploy
from repro.models import temponet_fixed, temponet_seed
from repro.nn import mae_loss
from repro.nn.serialization import load_model, save_model


@pytest.fixture(scope="module")
def ppg():
    cfg = PPGDaliaConfig(num_subjects=2, seconds_per_subject=40)
    ds = make_ppg_dalia(cfg, seed=0)
    train, val, test = train_val_test_split(ds, rng=np.random.default_rng(0))
    return (DataLoader(train, 16, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 16), DataLoader(test, 16))


class TestSearchCheckpointReload:
    def test_checkpoint_preserves_search_outcome(self, ppg, tmp_path):
        train, val, test = ppg
        seed = temponet_seed(width_mult=0.125, seed=0)
        trainer = PITTrainer(seed, mae_loss, lam=1.0, gamma_lr=0.1,
                             warmup_epochs=0, max_prune_epochs=4,
                             prune_patience=4, finetune_epochs=1,
                             finetune_patience=1)
        result = trainer.fit(train, val)
        path = tmp_path / "searched.npz"
        save_model(seed, path, metadata={"dilations": list(result.dilations)})

        # A fresh seed, restored, must reproduce dilations AND outputs.
        restored = temponet_seed(width_mult=0.125, seed=99)
        meta = load_model(restored, path)
        assert tuple(meta["dilations"]) == result.dilations
        for layer, d in zip(pit_layers(restored), result.dilations):
            # Restored γ̂ encode the same dilations (masks were frozen, so
            # compare through the frozen buffers).
            assert layer.mask.current_dilation() == d
        restored.eval()
        seed.eval()
        assert evaluate(restored, mae_loss, test) == pytest.approx(
            evaluate(seed, mae_loss, test))

    def test_exported_network_deploys_after_reload(self, ppg, tmp_path):
        train, val, test = ppg
        seed = temponet_seed(width_mult=0.125, seed=0)
        for layer in pit_layers(seed):
            layer.set_dilation(2)
            layer.freeze()
        network = export_network(seed)
        path = tmp_path / "exported.npz"
        save_model(network, path)

        clone = export_network(seed)  # same architecture
        load_model(clone, path)
        report = deploy(clone, mae_loss, train, test, (1, 4, 256),
                        name="reloaded")
        assert report.params == clone.count_parameters()


class TestRegistryWorkflow:
    def test_sweep_feeds_registry_markdown(self, ppg):
        train, val, _ = ppg
        sweep = run_dse(lambda: temponet_seed(width_mult=0.125, seed=0),
                        mae_loss, train, val, lambdas=[0.0, 2.0],
                        warmups=(0,),
                        trainer_kwargs=dict(gamma_lr=0.1, max_prune_epochs=3,
                                            prune_patience=3,
                                            finetune_epochs=0))
        registry = ExperimentRegistry()
        for p in sweep.points:
            registry.record("fig4-bottom", f"lam={p.lam:g} params",
                            "n/a", p.params)
        md = registry.to_markdown()
        assert "fig4-bottom" in md
        assert str(sweep.points[0].params) in md

    def test_table_rendering_of_sweep(self, ppg):
        train, val, _ = ppg
        sweep = run_dse(lambda: temponet_seed(width_mult=0.125, seed=0),
                        mae_loss, train, val, lambdas=[0.0],
                        warmups=(0,),
                        trainer_kwargs=dict(max_prune_epochs=1,
                                            finetune_epochs=0))
        table = format_table(
            ["lambda", "params", "loss"],
            [[p.lam, p.params, p.loss] for p in sweep.points],
            formats=[None, None, ".3f"])
        assert "lambda" in table
        assert "params" in table


class TestAugmentedTraining:
    def test_augmenter_with_dataset_pipeline(self):
        """Windows -> augmentation -> dataset -> loader -> model, end to end."""
        rng = np.random.default_rng(0)
        signal = rng.standard_normal((4, 512))
        windows = sliding_windows(signal, window=256, shift=128)
        assert windows.shape[0] == 3
        aug = Augmenter(jitter_sigma=0.05, scale_sigma=0.1,
                        rng=np.random.default_rng(1))
        augmented = aug.batch(windows)
        targets = np.full((len(windows), 1), 80.0)
        loader = DataLoader(ArrayDataset(augmented, targets), 2)
        model = temponet_fixed(width_mult=0.125, seed=0)
        value = evaluate(model, mae_loss, loader)
        assert np.isfinite(value)


class TestCostModelConsistency:
    def test_deploy_and_estimate_agree(self, ppg):
        train, _, test = ppg
        network = temponet_fixed((2, 2, 1, 4, 4, 8, 8), width_mult=0.125, seed=0)
        report = deploy(network, mae_loss, train, test, (1, 4, 256),
                        quantize=False)
        direct = GAP8Model().estimate(network, (1, 4, 256))
        assert report.latency_ms == pytest.approx(direct.latency_ms)
        assert report.energy_mj == pytest.approx(direct.energy_mj)

    def test_exported_pit_costs_less_than_seed(self, ppg):
        seed_net = temponet_fixed(None, width_mult=0.125, seed=0)
        pruned_net = temponet_fixed((4, 4, 4, 8, 8, 16, 16),
                                    width_mult=0.125, seed=0)
        gap8 = GAP8Model()
        seed_cost = gap8.estimate(seed_net, (1, 4, 256))
        pruned_cost = gap8.estimate(pruned_net, (1, 4, 256))
        assert pruned_cost.latency_ms < seed_cost.latency_ms
        assert pruned_cost.total_macs < seed_cost.total_macs
