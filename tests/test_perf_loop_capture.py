"""Perf smoke: whole-loop (epoch) capture vs per-step codegen replay.

Marked ``perf`` and skipped in the tier-1 run; enable with::

    REPRO_RUN_PERF=1 PYTHONPATH=src python -m pytest tests/test_perf_loop_capture.py -q -s

Times one training epoch executed two ways over identical batch lists:
as a per-step codegen replay driven from Python (the PR-7 fast path —
zero_grad / step replay / clip / ``Adam.step()`` per batch), and as one
:class:`CompiledEpoch` loop program (this PR — one generated function per
epoch, optimizer update kernels inside the loop, flat-packed optimizer
state).  Both modes run back-to-back within every round, in alternating
order, and the reported speedup is the median of per-round time ratios —
CPU load spikes and frequency drift hit both legs of a round alike, so
neither can masquerade as (or mask) a capture speedup.  Min-of-reps
absolute times are recorded alongside.  The headline row is deliberately
dispatch-bound —
small batches, short sequences, float32 + im2col — because that is the
regime whole-loop capture targets: per-batch Python dispatch comparable
to the arithmetic itself.

Records ``BENCH_loop_capture.json`` in the repository root, asserts the
epoch-level replay beats per-step codegen by ``TARGET_SPEEDUP`` on the
headline row, and asserts both modes produce bit-identical parameters.
"""

import copy
import json
import os
import time

import numpy as np
import pytest

from repro.autograd import get_default_dtype, set_default_dtype, use_backend
from repro.autograd.graph import CompileConfig
from repro.core.trainer import make_epoch_runner, make_training_step
from repro.nn import BatchNorm1d, CausalConv1d, ReLU, Sequential, mse_loss
from repro.optim import Adam

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(not os.environ.get("REPRO_RUN_PERF"),
                       reason="perf smoke test; set REPRO_RUN_PERF=1 to run"),
]

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_loop_capture.json")

# (dtype, backend, batch, batches-per-epoch).  Headline config first: it
# runs before sustained load heats the machine into thermal throttling.
PERF_CONFIGS = [
    ("float32", "im2col", 4, 32),
    ("float32", "im2col", 16, 16),
    ("float64", "einsum", 16, 16),
]
PERF_ASSERT_CONFIG = ("float32", "im2col", 4, 32)
TARGET_SPEEDUP = 1.1     # epoch replay vs per-step codegen, headline row
REPS = 25
WARMUP = 3
SEQ_LEN = 64


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        CausalConv1d(4, 8, kernel_size=3, rng=rng), BatchNorm1d(8), ReLU(),
        CausalConv1d(8, 8, kernel_size=3, dilation=2, rng=rng), ReLU(),
        CausalConv1d(8, 1, 1, rng=rng))


def _batches(batch, count, seed=0):
    rng = np.random.default_rng(seed)
    dtype = get_default_dtype()
    return [(rng.standard_normal((batch, 4, SEQ_LEN)).astype(dtype),
             rng.standard_normal((batch, 1, SEQ_LEN)).astype(dtype))
            for _ in range(count)]


def _make_leg(mode, seed_model):
    """One (model, optimizer, per-epoch callable) leg; mode: step | loop."""
    model = copy.deepcopy(seed_model)
    optimizer = Adam(model.parameters(), lr=1e-3)
    cfg = CompileConfig(compile_step=True, graph_exec="source",
                        graph_opt="default", loop_capture=(mode == "loop"))
    step = make_training_step(model, mse_loss, compile_config=cfg)
    epoch = make_epoch_runner(step, optimizer, None, cfg)

    if epoch is not None:
        def run_epoch(batches):
            return epoch.run_batches(list(batches))
    else:
        def run_epoch(batches):
            total = 0.0
            for x, y in batches:
                optimizer.zero_grad()
                outs = step(x, y)
                optimizer.step()
                total += outs[1]
            return total / len(batches)
    return model, run_epoch, epoch


def test_epoch_capture_speedup():
    rows = []
    prev_dtype = get_default_dtype()
    try:
        for dtype, backend, batch, count in PERF_CONFIGS:
            set_default_dtype(dtype)
            with use_backend(backend):
                seed_model = _model()
                batches = _batches(batch, count)

                # Bit-parity first: 3 epochs from identical seeds must end
                # on identical parameters — a speedup that changes the
                # science is a bug, not a feature.
                m_step, run_step, _ = _make_leg("step", seed_model)
                m_loop, run_loop, epoch = _make_leg("loop", seed_model)
                for _ in range(3):
                    a = run_step(batches)
                    b = run_loop(batches)
                    assert np.array_equal(a, b), (dtype, backend, batch)
                s1, s2 = m_step.state_dict(), m_loop.state_dict()
                for key in s1:
                    assert np.array_equal(s1[key], s2[key]), key
                assert epoch.loop_fallback_reason is None
                assert epoch.replayed_epochs >= 1

                # Interleaved timing over one epoch of work.  Both legs run
                # back-to-back within each round (order alternating), and
                # the headline statistic is the *median of per-round
                # ratios*: a load spike or frequency step hits the two
                # adjacent epochs alike, where a min-of-reps comparison
                # would let it land on one leg only.
                best = {"step": float("inf"), "loop": float("inf")}
                order = [("step", run_step), ("loop", run_loop)]
                ratios = []
                for rep in range(REPS + WARMUP):
                    times = {}
                    for mode, run in (order if rep % 2 else reversed(order)):
                        start = time.perf_counter()
                        run(batches)
                        times[mode] = time.perf_counter() - start
                    if rep >= WARMUP:
                        for mode, seconds in times.items():
                            best[mode] = min(best[mode], seconds)
                        ratios.append(times["step"] / times["loop"])
                ratios.sort()

                rows.append({
                    "dtype": dtype, "backend": backend, "batch": batch,
                    "batches_per_epoch": count,
                    "per_step_epoch_seconds": best["step"],
                    "loop_epoch_seconds": best["loop"],
                    "speedup": ratios[len(ratios) // 2],
                    "min_ratio_speedup": best["step"] / best["loop"],
                    "bit_identical": True,
                })
    finally:
        set_default_dtype(prev_dtype)

    payload = {
        "model": "3xCausalConv(4->8->8->1, k3/k3d2) + BN, T=64",
        "reps": REPS,
        "timing": "median of per-round epoch-time ratios, legs adjacent "
                  "and order-alternated; min-of-reps absolutes alongside",
        "comparison": "CompiledEpoch (source) vs per-step codegen drive",
        "rows": rows,
    }
    with open(os.path.abspath(RESULT_PATH), "w") as handle:
        json.dump(payload, handle, indent=2)

    for row in rows:
        print(f"\n{row['dtype']}/{row['backend']} batch={row['batch']} "
              f"x{row['batches_per_epoch']}: step={row['per_step_epoch_seconds']*1e3:.2f} ms "
              f"loop={row['loop_epoch_seconds']*1e3:.2f} ms "
              f"({row['speedup']:.2f}x)")

    headline = next(row for row in rows
                    if (row["dtype"], row["backend"], row["batch"],
                        row["batches_per_epoch"]) == PERF_ASSERT_CONFIG)
    assert headline["speedup"] >= TARGET_SPEEDUP, (
        f"whole-loop capture speedup regressed on the dispatch-bound row: "
        f"{headline['speedup']:.2f}x < {TARGET_SPEEDUP}x")
