"""Tests for loss functions against closed-form references."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    bce_with_logits,
    cross_entropy,
    huber_loss,
    mae_loss,
    mse_loss,
    polyphonic_nll,
    BCEWithLogits,
    CrossEntropy,
    HuberLoss,
    MAELoss,
    MSELoss,
    PolyphonicNLL,
)

RNG = np.random.default_rng(33)


def reference_bce(logits, targets):
    p = 1.0 / (1.0 + np.exp(-logits))
    eps = 1e-12
    return -(targets * np.log(p + eps) + (1 - targets) * np.log(1 - p + eps))


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = RNG.standard_normal((4, 5))
        targets = (RNG.random((4, 5)) > 0.5).astype(float)
        out = bce_with_logits(Tensor(logits), Tensor(targets))
        assert out.item() == pytest.approx(reference_bce(logits, targets).mean(), rel=1e-6)

    def test_stable_for_huge_logits(self):
        out = bce_with_logits(Tensor([1e4, -1e4]), Tensor([1.0, 0.0]))
        assert np.isfinite(out.item())
        assert out.item() == pytest.approx(0.0, abs=1e-8)

    def test_worst_case_value(self):
        # Confidently wrong: loss ≈ |logit|.
        out = bce_with_logits(Tensor([100.0]), Tensor([0.0]))
        assert out.item() == pytest.approx(100.0, rel=1e-6)

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        targets = Tensor((RNG.random((3, 4)) > 0.5).astype(float))
        check_gradients(lambda x: bce_with_logits(x, targets), [logits])

    def test_module_wrapper(self):
        logits, targets = Tensor([0.0]), Tensor([1.0])
        assert BCEWithLogits()(logits, targets).item() == pytest.approx(np.log(2))


class TestPolyphonicNLL:
    def test_reduction_structure(self):
        """NLL = mean over (batch, time) of the sum over the 88 keys."""
        logits = RNG.standard_normal((2, 88, 6))
        targets = (RNG.random((2, 88, 6)) > 0.9).astype(float)
        out = polyphonic_nll(Tensor(logits), Tensor(targets))
        per_element = reference_bce(logits, targets)
        expected = per_element.sum(axis=1).mean()
        assert out.item() == pytest.approx(expected, rel=1e-6)

    def test_scale_is_88x_bce(self):
        logits = RNG.standard_normal((2, 88, 6))
        targets = (RNG.random((2, 88, 6)) > 0.5).astype(float)
        nll = polyphonic_nll(Tensor(logits), Tensor(targets)).item()
        bce = bce_with_logits(Tensor(logits), Tensor(targets)).item()
        assert nll == pytest.approx(88 * bce, rel=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            polyphonic_nll(Tensor(np.zeros((1, 88, 4))), Tensor(np.zeros((1, 88, 5))))

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((2, 5, 4)), requires_grad=True)
        targets = Tensor((RNG.random((2, 5, 4)) > 0.5).astype(float))
        check_gradients(lambda x: polyphonic_nll(x, targets), [logits])

    def test_module_wrapper(self):
        x = Tensor(np.zeros((1, 2, 3)))
        y = Tensor(np.zeros((1, 2, 3)))
        assert PolyphonicNLL()(x, y).item() == pytest.approx(2 * np.log(2))


class TestRegressionLosses:
    def test_mae_value(self):
        out = mae_loss(Tensor([1.0, 3.0]), Tensor([2.0, 1.0]))
        assert out.item() == pytest.approx(1.5)

    def test_mae_accepts_numpy_target(self):
        assert mae_loss(Tensor([1.0]), np.array([3.0])).item() == pytest.approx(2.0)

    def test_mse_value(self):
        out = mse_loss(Tensor([1.0, 3.0]), Tensor([2.0, 1.0]))
        assert out.item() == pytest.approx((1 + 4) / 2)

    def test_huber_quadratic_region(self):
        out = huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        assert out.item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        out = huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        assert out.item() == pytest.approx(3.0 - 0.5)

    def test_huber_continuous_at_delta(self):
        just_below = huber_loss(Tensor([0.999]), Tensor([0.0])).item()
        just_above = huber_loss(Tensor([1.001]), Tensor([0.0])).item()
        assert abs(just_below - just_above) < 1e-2

    @pytest.mark.parametrize("loss", [mae_loss, mse_loss, huber_loss])
    def test_gradcheck(self, loss):
        pred = Tensor(RNG.standard_normal(6) * 2, requires_grad=True)
        target = Tensor(RNG.standard_normal(6))
        check_gradients(lambda p: loss(p, target), [pred])

    def test_module_wrappers(self):
        p, t = Tensor([2.0]), Tensor([0.0])
        assert MAELoss()(p, t).item() == pytest.approx(2.0)
        assert MSELoss()(p, t).item() == pytest.approx(4.0)
        assert HuberLoss(delta=1.0)(p, t).item() == pytest.approx(1.5)


class TestCrossEntropy:
    def test_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)))
        labels = np.arange(4) % 10
        assert cross_entropy(logits, labels).item() == pytest.approx(np.log(10))

    def test_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        out = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert out.item() == pytest.approx(0.0, abs=1e-8)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))

    def test_gradcheck(self):
        logits = Tensor(RNG.standard_normal((3, 5)), requires_grad=True)
        labels = np.array([0, 3, 2])
        check_gradients(lambda x: cross_entropy(x, labels), [logits])

    def test_module_wrapper(self):
        out = CrossEntropy()(Tensor(np.zeros((1, 2))), np.array([0]))
        assert out.item() == pytest.approx(np.log(2))
