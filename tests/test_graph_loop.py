"""Differential harness for whole-loop (epoch) capture.

Locks :class:`repro.autograd.graph.CompiledEpoch` — one loop program per
epoch, optimizer update kernels and grad clipping included — to the
per-step compiled path and to eager execution: bit-identical losses,
parameters, Adam moments (``m`` / ``v`` / step counters) and early-stop
trajectories, across both replay executors, both conv backends, both
dtypes, and the stacked trainer.

Also covers the loop structure itself (a replayed epoch is a single
:class:`LoopNode` program; the source executor emits a real ``for`` loop),
the capture-unsafe fallback ladder (loop → per-step → eager, each rung
degrading without poisoning the one below), and the consolidated
:class:`CompileConfig` knob object with its deprecation shim.
"""

import copy
import pickle

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    get_default_dtype,
    mark_capture_unsafe,
    set_default_dtype,
    use_backend,
)
from repro.autograd.graph import (
    CompileConfig,
    CompiledEpoch,
    CompiledStep,
    EagerStep,
    LoopNode,
    loop_capture_default,
)
from repro.autograd.graph import config as graph_config
from repro.core import PITTrainer
from repro.core.pit_conv import PITConv1d
from repro.core.stacked import StackedPITTrainer
from repro.core.trainer import make_epoch_runner, make_training_step, train_plain
from repro.data import ArrayDataset, DataLoader, clone_loader
from repro.nn import (
    BatchNorm1d,
    CausalConv1d,
    Dropout,
    GlobalAvgPool1d,
    Linear,
    Module,
    ReLU,
    Sequential,
    mse_loss,
)
from repro.optim import Adam, clip_grad_norm


@pytest.fixture(params=["interp", "source"], autouse=True)
def graph_exec_leg(request, monkeypatch):
    """Run every test under both the interpreted and the codegen executor."""
    monkeypatch.setenv("REPRO_GRAPH_EXEC", request.param)
    return request.param


@pytest.fixture
def dtype_restore():
    prev = get_default_dtype()
    yield
    set_default_dtype(prev)


def small_net(seed=5):
    rng = np.random.default_rng(seed)
    return Sequential(CausalConv1d(2, 4, kernel_size=3, rng=rng), ReLU(),
                      GlobalAvgPool1d(), Linear(4, 1, rng=rng))


def batches_of(count=4, n=6, seed=0, tail=None):
    """`count` uniform (x, y) batch pairs, plus an optional ragged tail."""
    rng = np.random.default_rng(seed)
    dtype = get_default_dtype()
    out = [(rng.standard_normal((n, 2, 16)).astype(dtype),
            rng.standard_normal((n, 1)).astype(dtype))
           for _ in range(count)]
    if tail:
        out.append((rng.standard_normal((tail, 2, 16)).astype(dtype),
                    rng.standard_normal((tail, 1)).astype(dtype)))
    return out


def run_leg(mode, batches, epochs=3, grad_clip=None, model_seed=5):
    """Train one fresh model `epochs` times over `batches` in one mode.

    mode: "eager" | "step" (per-step compiled) | "loop" (whole-loop).
    Returns (model, optimizer, per-epoch mean task losses, epoch runner).
    """
    model = small_net(model_seed)
    optimizer = Adam(model.parameters(), lr=1e-3)
    cfg = CompileConfig(compile_step=(mode != "eager"),
                        loop_capture=(mode == "loop"))
    step = make_training_step(model, mse_loss, compile_config=cfg)
    epoch = make_epoch_runner(step, optimizer, grad_clip, cfg)
    assert (epoch is not None) == (mode == "loop")
    losses = []
    for _ in range(epochs):
        if epoch is not None:
            losses.append(epoch.run_batches(list(batches)))
        else:
            total = 0.0
            for x, y in batches:
                optimizer.zero_grad()
                outs = step(x, y)
                if grad_clip is not None:
                    clip_grad_norm(optimizer.params, grad_clip)
                optimizer.step()
                total += outs[1]
            losses.append(total / len(batches))
    return model, optimizer, losses, epoch


def assert_leg_parity(ref, other, context=""):
    """Bit-equality of losses, parameters and full Adam state."""
    ref_model, ref_opt, ref_losses, _ = ref
    model, opt, losses, _ = other
    assert len(ref_losses) == len(losses)
    for i, (a, b) in enumerate(zip(ref_losses, losses)):
        assert np.array_equal(a, b), f"{context}: epoch {i} loss"
    s1, s2 = ref_model.state_dict(), model.state_dict()
    assert s1.keys() == s2.keys()
    for key in s1:
        assert np.array_equal(s1[key], s2[key]), f"{context}: state {key}"
    for p1, p2 in zip(ref_opt.params, opt.params):
        k1, k2 = id(p1), id(p2)
        assert (k1 in ref_opt._m) == (k2 in opt._m), f"{context}: moment set"
        if k1 in ref_opt._m:
            assert np.array_equal(ref_opt._m[k1], opt._m[k2]), \
                f"{context}: adam m"
            assert np.array_equal(ref_opt._v[k1], opt._v[k2]), \
                f"{context}: adam v"
            assert ref_opt._t[k1] == opt._t[k2], f"{context}: adam t"


# ----------------------------------------------------------------------
# Three-way parity: loop == per-step compiled == eager, bit for bit
# ----------------------------------------------------------------------

class TestEpochParity:
    @pytest.mark.parametrize("backend", ["einsum", "im2col"])
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_three_way_parity(self, backend, dtype, dtype_restore):
        set_default_dtype(dtype)
        with use_backend(backend):
            batches = batches_of(count=3, tail=2)
            ctx = f"{backend}/{dtype}"
            eager = run_leg("eager", batches)
            step = run_leg("step", batches)
            loop = run_leg("loop", batches)
            assert_leg_parity(eager, step, context=f"{ctx} step")
            assert_leg_parity(eager, loop, context=f"{ctx} loop")
            epoch = loop[3]
            assert epoch.loop_fallback_reason is None
            assert epoch.driven_epochs == 1      # the tracing epoch
            assert epoch.replayed_epochs == 2

    def test_parity_with_grad_clip(self):
        batches = batches_of(count=3, tail=2, seed=3)
        eager = run_leg("eager", batches, grad_clip=0.5)
        loop = run_leg("loop", batches, grad_clip=0.5)
        assert_leg_parity(eager, loop, context="grad-clip")
        assert loop[3].replayed_epochs == 2

    def test_parity_uniform_batches_no_tail(self):
        batches = batches_of(count=4)
        eager = run_leg("eager", batches)
        loop = run_leg("loop", batches)
        assert_leg_parity(eager, loop, context="no-tail")
        (node,) = loop[3].loop_nodes.values()
        assert node.epilogue is None

    def test_randomized_early_stop_grid(self):
        """train_plain with randomized patience/epoch grids: the looped,
        per-step and eager paths must stop on the same epoch with
        bit-identical histories and restored best weights."""
        rng = np.random.default_rng(7)
        data_rng = np.random.default_rng(11)
        x = data_rng.standard_normal((20, 2, 16))
        y = data_rng.standard_normal((20, 1))

        def run(cfg, epochs, patience, seed):
            model = small_net(seed)
            train = DataLoader(ArrayDataset(x[:14], y[:14]), 4, shuffle=True,
                               rng=np.random.default_rng(seed + 1))
            val = DataLoader(ArrayDataset(x[14:], y[14:]), 4)
            result = train_plain(model, mse_loss, train, val, epochs=epochs,
                                 patience=patience, compile_config=cfg)
            return model, result

        for trial in range(3):
            epochs = int(rng.integers(3, 7))
            patience = int(rng.integers(1, 4))
            seed = int(rng.integers(0, 100))
            ctx = f"trial {trial}: epochs={epochs} patience={patience}"
            legs = {}
            for mode in ("eager", "step", "loop"):
                cfg = CompileConfig(compile_step=(mode != "eager"),
                                    loop_capture=(mode == "loop"))
                legs[mode] = run(cfg, epochs, patience, seed)
            _, ref = legs["eager"]
            for mode in ("step", "loop"):
                model, result = legs[mode]
                assert result.epochs == ref.epochs, ctx
                assert result.history == ref.history, ctx
                assert result.best_val == ref.best_val, ctx
                s1 = legs["eager"][0].state_dict()
                s2 = model.state_dict()
                for key in s1:
                    assert np.array_equal(s1[key], s2[key]), f"{ctx}: {key}"
            loop_stats = legs["loop"][1].compile_stats.get("loop")
            assert loop_stats is not None, ctx
            assert loop_stats["loop_fallback_reason"] is None, ctx

    def test_pit_trainer_loop_matches_step(self):
        """All three PIT phases replay under loop capture with results
        bit-identical to the per-step compiled trainer."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal((16, 2, 12))
        y = rng.standard_normal((16, 1, 12))

        def run(loop_capture):
            mrng = np.random.default_rng(9)
            model = Sequential(PITConv1d(2, 4, rf_max=5, rng=mrng), ReLU(),
                               CausalConv1d(4, 1, 1, rng=mrng))
            train = DataLoader(ArrayDataset(x[:12], y[:12]), 4, shuffle=True,
                               rng=np.random.default_rng(3))
            val = DataLoader(ArrayDataset(x[12:], y[12:]), 4)
            trainer = PITTrainer(
                model, mse_loss, lam=1e-6, warmup_epochs=2,
                max_prune_epochs=3, prune_patience=2, finetune_epochs=2,
                finetune_patience=2,
                compile_config=CompileConfig(compile_step=True,
                                             loop_capture=loop_capture))
            result = trainer.fit(train, val)
            return model, result

        m_step, r_step = run(False)
        m_loop, r_loop = run(True)
        assert r_loop.dilations == r_step.dilations
        assert r_loop.best_val == r_step.best_val
        assert r_loop.history == r_step.history
        s1, s2 = m_step.state_dict(), m_loop.state_dict()
        for key in s1:
            assert np.array_equal(s1[key], s2[key]), key
        for phase in ("warmup", "prune", "finetune"):
            stats = r_loop.compile_stats[phase]
            assert stats["loop"]["loop_fallback_reason"] is None, phase
            assert stats["loop"]["replayed_epochs"] >= 1, phase

    def test_stacked_trainer_loop_matches_step(self):
        """Stacked whole-loop capture (vector accumulation, stacked clip
        kernel, loop-carried ``active`` mask) is bit-identical to the
        per-step compiled stacked trainer."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((20, 2, 12))
        y = (x[:, :1, :] * 0.5 + 0.3 * rng.standard_normal((20, 1, 12)))

        class StackSeed(Module):
            def __init__(self):
                super().__init__()
                mrng = np.random.default_rng(0)
                self.c1 = PITConv1d(2, 4, rf_max=5, rng=mrng)
                self.bn = BatchNorm1d(4)
                self.r1 = ReLU()
                self.dp = Dropout(0.2, rng=mrng)
                self.h = CausalConv1d(4, 1, 1, rng=mrng)

            def forward(self, inp):
                return self.h(self.dp(self.r1(self.bn(self.c1(inp)))))

        def run(loop_capture):
            train = DataLoader(ArrayDataset(x[:16], y[:16]), 4, shuffle=True,
                               rng=np.random.default_rng(1))
            val = DataLoader(ArrayDataset(x[16:], y[16:]), 4)
            trainer = StackedPITTrainer(
                StackSeed(), mse_loss, lams=[1e-7, 1e-4], warmup_epochs=2,
                max_prune_epochs=3, prune_patience=2, finetune_epochs=2,
                finetune_patience=2, grad_clip=1.0,
                compile_config=CompileConfig(compile_step=True,
                                             loop_capture=loop_capture))
            results = trainer.fit(train, val)
            states = [trainer.model_for(i).state_dict()
                      for i in range(len(results))]
            return results, states

        step_results, step_states = run(False)
        loop_results, loop_states = run(True)
        for rs, rl in zip(step_results, loop_results):
            assert rl.dilations == rs.dilations
            assert rl.best_val == rs.best_val
            assert rl.history == rs.history
            assert rl.prune_epochs == rs.prune_epochs
            assert rl.finetune_epochs == rs.finetune_epochs
        for ss, sl in zip(step_states, loop_states):
            for key in ss:
                assert np.array_equal(ss[key], sl[key]), key


# ----------------------------------------------------------------------
# Loop structure: one program per epoch, real `for` loop in source
# ----------------------------------------------------------------------

class TestLoopStructure:
    def test_epoch_is_single_loop_node_program(self):
        batches = batches_of(count=3, tail=2)
        _, _, _, epoch = run_leg("loop", batches)
        assert len(epoch.epoch_programs) == 1
        (program,) = epoch.epoch_programs.values()
        assert len(program.schedule) == 1
        (node,) = program.schedule
        assert isinstance(node, LoopNode)
        assert node.epilogue is not None          # the ragged tail body
        assert len(node.updates) > 0              # captured Adam kernels
        assert node.carried["params"]             # state crossed as data

    def test_source_executor_emits_real_for_loop(self, graph_exec_leg):
        if graph_exec_leg != "source":
            pytest.skip("codegen executor leg only")
        batches = batches_of(count=3, tail=2)
        _, _, _, epoch = run_leg("loop", batches)
        assert epoch.executors and all(
            mode == "source" for mode in epoch.executors.values())
        (source,) = epoch.dump_source().values()
        assert "for pair in bodies:" in source
        assert "def run(bodies, tail):" in source

    def test_interp_executor_when_requested(self, graph_exec_leg):
        if graph_exec_leg != "interp":
            pytest.skip("interpreter leg only")
        batches = batches_of(count=3)
        _, _, _, epoch = run_leg("loop", batches)
        assert all(mode == "interp" for mode in epoch.executors.values())
        assert epoch.dump_source() == {}

    def test_diagnostics_are_jsonable(self):
        import json
        batches = batches_of(count=3)
        _, _, _, epoch = run_leg("loop", batches)
        report = epoch.diagnostics()
        json.dumps(report)
        assert report["replayed_epochs"] == 2
        assert report["driven_epochs"] == 1


# ----------------------------------------------------------------------
# Flat-packed optimizer state: one update kernel per group per batch
# ----------------------------------------------------------------------

class TestFlatPack:
    def _specs(self, epoch):
        (runner,) = epoch._runners.values()
        return runner.specs

    def test_small_params_pack_into_one_flat_spec(self):
        from repro.optim.kernels import FlatParam, StepCounters
        batches = batches_of(count=3)
        model, optimizer, _, epoch = run_leg("loop", batches)
        specs = self._specs(epoch)
        # One group, four small parameters -> a single flat update spec.
        assert len(specs) == 1
        flat = specs[0].param
        assert isinstance(flat, FlatParam)
        assert flat.data.ndim == 1
        total = sum(p.data.size for p in model.parameters())
        assert flat.data.size == total
        # Every parameter's storage is a view of the pack, and the Adam
        # moments were rebound to views of the flat state buffers.
        for p in model.parameters():
            assert np.shares_memory(p.data, flat.data)
            assert np.shares_memory(optimizer._m[id(p)], specs[0].state[0])
            assert np.shares_memory(optimizer._v[id(p)], specs[0].state[1])
        assert isinstance(specs[0].state[2], StepCounters)

    def test_eager_step_interop_after_packing(self):
        """Eager ``Adam.step()`` on a packed optimizer stays exact.

        The flat pack rebinds parameter/moment storage to views; a later
        eager step (the drive rung for a new batch signature) must write
        through those views and advance every per-parameter counter.
        """
        batches = batches_of(count=3)
        loop = run_leg("loop", batches, epochs=2)
        step_leg = run_leg("step", batches, epochs=2)
        for leg in (loop, step_leg):
            model, optimizer, _, _ = leg
            x, y = batches_of(count=1, n=3, seed=9)[0]
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            loss.backward()
            optimizer.step()
        assert_leg_parity(step_leg, loop, "eager step after packing")
        _, opt, _, _ = loop
        assert all(int(t) == 7 for t in opt._t.values())  # 2*3 replays + 1

    def test_threshold_keeps_params_unpacked(self, monkeypatch):
        from repro.optim import optimizers as optim_mod
        monkeypatch.setattr(optim_mod, "FLAT_PACK_MAX_ELEMENTS", 0)
        batches = batches_of(count=3)
        loop = run_leg("loop", batches)
        model = loop[0]
        specs = self._specs(loop[3])
        assert len(specs) == len(list(model.parameters()))
        assert_leg_parity(run_leg("eager", batches), loop,
                          "unpacked loop replay")

    def test_resync_readopts_rebound_storage(self):
        """Rebinding a param's ``.data`` between epochs must not desync."""
        batches = batches_of(count=3)
        loop = run_leg("loop", batches, epochs=2)
        ref = run_leg("eager", batches, epochs=2)
        for leg in (loop, ref):
            model, optimizer, losses, epoch = leg
            p = next(iter(model.parameters()))
            p.data = np.array(p.data, copy=True)  # same values, new array
            if epoch is not None:
                losses.append(epoch.run_batches(list(batches)))
            else:
                step = make_training_step(
                    model, mse_loss,
                    compile_config=CompileConfig(compile_step=False))
                total = 0.0
                for x, y in batches:
                    optimizer.zero_grad()
                    outs = step(x, y)
                    optimizer.step()
                    total += outs[1]
                losses.append(total / len(batches))
        assert_leg_parity(ref, loop, "post-rebind epoch")
        model, _, _, epoch = loop
        flat = self._specs(epoch)[0].param
        p = next(iter(model.parameters()))
        assert np.shares_memory(p.data, flat.data)  # re-adopted by resync


# ----------------------------------------------------------------------
# Fallback ladder: loop -> per-step -> eager, no rung poisons the next
# ----------------------------------------------------------------------

class TestFallbackLadder:
    def test_eager_step_drives_permanently(self):
        model = small_net()
        optimizer = Adam(model.parameters(), lr=1e-3)
        step = make_training_step(
            model, mse_loss,
            compile_config=CompileConfig(compile_step=False))
        assert isinstance(step, EagerStep)
        epoch = CompiledEpoch(step, optimizer)
        epoch.run_batches(batches_of(count=2))
        assert epoch.loop_fallback_reason == "step is not compiled"
        assert epoch.replayed_epochs == 0
        assert epoch.driven_epochs == 1

    def test_capture_unsafe_model_degrades_to_eager_not_loop(self):
        """A capture-unsafe step poisons itself to eager; the loop layer
        steps aside without masking that reason."""
        class Unsafe(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(4, 1, rng=np.random.default_rng(0))

            def forward(self, inp):
                mark_capture_unsafe("value-dependent test layer")
                return self.lin(inp)

        model = Unsafe()
        optimizer = Adam(model.parameters(), lr=1e-3)
        cfg = CompileConfig(compile_step=True, loop_capture=True)
        step = make_training_step(model, mse_loss, compile_config=cfg)
        assert isinstance(step, CompiledStep)
        epoch = make_epoch_runner(step, optimizer, None, cfg)
        rng = np.random.default_rng(0)
        batches = [(rng.standard_normal((4, 4)), rng.standard_normal((4, 1)))
                   for _ in range(2)]
        epoch.run_batches(list(batches))
        epoch.run_batches(list(batches))
        assert step.fallback_reason is not None          # rung 3
        assert "value-dependent test layer" in step.fallback_reason
        assert "eager" in epoch.loop_fallback_reason     # rung 2 explains
        assert epoch.replayed_epochs == 0

    def test_optimizer_without_capture_updates_drives(self):
        class Legacy(Adam):
            capture_updates = None

        model = small_net()
        optimizer = Legacy(model.parameters(), lr=1e-3)
        step = make_training_step(
            model, mse_loss, compile_config=CompileConfig(compile_step=True))
        epoch = CompiledEpoch(step, optimizer)
        batches = batches_of(count=2)
        epoch.run_batches(list(batches))
        epoch.run_batches(list(batches))
        assert "capture_updates" in epoch.loop_fallback_reason
        assert epoch.replayed_epochs == 0
        assert epoch.driven_epochs == 2

    def test_clip_without_kernel_drives(self):
        model = small_net()
        optimizer = Adam(model.parameters(), lr=1e-3)
        step = make_training_step(
            model, mse_loss, compile_config=CompileConfig(compile_step=True))
        epoch = CompiledEpoch(step, optimizer, grad_clip=1.0,
                              clip_fn=clip_grad_norm, clip_kernel=None)
        epoch.run_batches(batches_of(count=2))
        assert "clip kernel" in epoch.loop_fallback_reason
        assert epoch.driven_epochs == 1

    def test_ragged_interior_drives_then_uniform_replays(self):
        """Non-uniform interior batches drive that epoch, but the loop is
        not permanently disabled: a later uniform epoch still replays."""
        model = small_net()
        optimizer = Adam(model.parameters(), lr=1e-3)
        cfg = CompileConfig(compile_step=True, loop_capture=True)
        step = make_training_step(model, mse_loss, compile_config=cfg)
        epoch = make_epoch_runner(step, optimizer, None, cfg)
        ragged = batches_of(count=1) + batches_of(count=1, n=3, seed=1) \
            + batches_of(count=1, seed=2)
        epoch.run_batches(list(ragged))
        assert epoch.loop_fallback_reason == \
            "interior batches are not shape-uniform"
        # The ragged drive already traced the (n, ...) body through the
        # step's own cache, so uniform epochs replay immediately.
        uniform = batches_of(count=3, seed=4)
        epoch.run_batches(list(uniform))
        epoch.run_batches(list(uniform))
        assert epoch.replayed_epochs == 2
        assert epoch.driven_epochs == 1

    def test_empty_epoch_raises(self):
        model = small_net()
        optimizer = Adam(model.parameters(), lr=1e-3)
        step = make_training_step(
            model, mse_loss, compile_config=CompileConfig(compile_step=True))
        epoch = CompiledEpoch(step, optimizer)
        with pytest.raises(ValueError, match="no batches"):
            epoch.run_batches([])


# ----------------------------------------------------------------------
# CompileConfig: one knob object, env defaults, deprecation shim
# ----------------------------------------------------------------------

class TestCompileConfig:
    def test_defaults_defer_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOOP_CAPTURE", raising=False)
        monkeypatch.delenv("REPRO_COMPILE_STEP", raising=False)
        cfg = CompileConfig()
        assert not loop_capture_default()
        assert not cfg.want_loop()
        assert not cfg.want_compile()
        monkeypatch.setenv("REPRO_LOOP_CAPTURE", "1")
        assert loop_capture_default()
        assert cfg.want_compile()    # loop capture implies compilation
        assert cfg.want_loop()

    def test_explicit_compile_off_beats_loop_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOOP_CAPTURE", "1")
        cfg = CompileConfig(compile_step=False)
        assert not cfg.want_compile()
        assert not cfg.want_loop()

    def test_compile_env_beats_loop_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOOP_CAPTURE", "1")
        monkeypatch.setenv("REPRO_COMPILE_STEP", "0")
        cfg = CompileConfig()
        assert not cfg.want_compile()
        assert not cfg.want_loop()

    def test_resolve_config_fields_win_over_legacy(self):
        base = CompileConfig(graph_opt="none")
        with pytest.warns(DeprecationWarning):
            self._reset_shim_warning()
            merged = CompileConfig.resolve(base, graph_opt="default",
                                           compile_step=True)
        assert merged.graph_opt == "none"       # config wins
        assert merged.compile_step is True      # legacy fills the gap

    def test_resolve_legacy_kwargs_warn_once(self):
        self._reset_shim_warning()
        with pytest.warns(DeprecationWarning):
            CompileConfig.resolve(None, compile_step=True)
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            CompileConfig.resolve(None, compile_step=True)  # silent now

    def test_resolve_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="CompileConfig"):
            CompileConfig.resolve({"compile_step": True})

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            CompileConfig(graph_opt="aggressive").validate()
        with pytest.raises(ValueError):
            CompileConfig(graph_exec="jit").validate()

    def test_picklable(self):
        cfg = CompileConfig(compile_step=True, graph_opt="default",
                            graph_exec="source", loop_capture=True)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_trainer_shim_still_works(self):
        """The loose kwargs keep selecting the same behavior via the shim."""
        self._reset_shim_warning()
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((8, 2, 16)), rng.standard_normal((8, 1))
        train = DataLoader(ArrayDataset(x, y), 4)
        with pytest.warns(DeprecationWarning):
            result = train_plain(small_net(), mse_loss, train, train,
                                 epochs=1, patience=1, compile_step=True)
        assert result.compile_stats is not None

    @staticmethod
    def _reset_shim_warning():
        graph_config._warned_legacy = False
