"""Tests for the ResTCN and TEMPONet seed architectures."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import PITConv1d, pit_layers, search_space_size
from repro.models import (
    RESTCN_HAND_DILATIONS,
    RESTCN_RECEPTIVE_FIELDS,
    ResTCN,
    TEMPONET_HAND_DILATIONS,
    TEMPONET_RECEPTIVE_FIELDS,
    TEMPONet,
    restcn_fixed,
    restcn_hand_tuned,
    restcn_seed,
    temponet_fixed,
    temponet_hand_tuned,
    temponet_seed,
)

RNG = np.random.default_rng(3)


class TestConstants:
    def test_restcn_hand_dilations_match_paper_table1(self):
        assert RESTCN_HAND_DILATIONS == (1, 1, 2, 2, 4, 4, 8, 8)

    def test_temponet_hand_dilations_match_paper_table1(self):
        assert TEMPONET_HAND_DILATIONS == (2, 2, 1, 4, 4, 8, 8)

    def test_receptive_fields_consistent(self):
        # rf = (k-1)*d + 1 with base kernel 5.
        assert RESTCN_RECEPTIVE_FIELDS == (5, 5, 9, 9, 17, 17, 33, 33)
        assert TEMPONET_RECEPTIVE_FIELDS == (5, 5, 5, 9, 9, 17, 17)


class TestResTCN:
    def test_searchable_has_8_pit_layers(self):
        assert len(pit_layers(restcn_seed(width_mult=0.05))) == 8

    def test_pit_rf_max_match_receptive_fields(self):
        layers = pit_layers(restcn_seed(width_mult=0.05))
        assert tuple(layer.rf_max for layer in layers) == RESTCN_RECEPTIVE_FIELDS

    def test_fixed_has_no_pit_layers(self):
        assert pit_layers(restcn_fixed(width_mult=0.05)) == []

    def test_forward_shape(self):
        model = restcn_fixed(width_mult=0.05)
        out = model(Tensor(RNG.standard_normal((2, 88, 30))))
        assert out.shape == (2, 88, 30)

    def test_hand_tuned_kernel_sizes(self):
        """Fixed-dilation convs keep the receptive field: k=5 everywhere."""
        model = restcn_hand_tuned(width_mult=0.05)
        from repro.nn import CausalConv1d
        convs = [m for m in model.modules()
                 if isinstance(m, CausalConv1d) and m.kernel_size > 1]
        assert all(c.kernel_size == 5 for c in convs)
        assert tuple(c.dilation for c in convs) == RESTCN_HAND_DILATIONS

    def test_seed_kernel_equals_rf(self):
        model = restcn_fixed(None, width_mult=0.05)
        from repro.nn import CausalConv1d
        convs = [m for m in model.modules()
                 if isinstance(m, CausalConv1d) and m.kernel_size > 1]
        assert tuple(c.kernel_size for c in convs) == RESTCN_RECEPTIVE_FIELDS

    def test_full_scale_parameter_counts(self):
        """Seed ≈ 2.9M, hand-tuned ≈ 0.9M (paper: 3.53M / 1.05M, same shape:
        the seed is ~3.2-3.4x larger than the hand-tuned network)."""
        seed_params = restcn_fixed(None).count_parameters()
        hand_params = restcn_hand_tuned().count_parameters()
        assert 2.5e6 < seed_params < 4e6
        assert 0.7e6 < hand_params < 1.3e6
        assert 2.8 < seed_params / hand_params < 3.9

    def test_search_space_near_1e5(self):
        assert 1e5 <= search_space_size(restcn_seed(width_mult=0.05)) < 2e5

    def test_causality(self):
        model = restcn_fixed(width_mult=0.05)
        model.eval()
        x = RNG.standard_normal((1, 88, 20))
        base = model(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, -1] += 5.0
        out = model(Tensor(x2)).data
        assert np.allclose(out[:, :, :-1], base[:, :, :-1])

    def test_wrong_dilation_count_rejected(self):
        with pytest.raises(ValueError):
            ResTCN(dilations=(1, 2, 4), width_mult=0.05)

    def test_receptive_field_property(self):
        model = restcn_fixed(None, width_mult=0.05)
        # Sum of (rf - 1) over the 8 convs + 1.
        assert model.receptive_field == sum(rf - 1 for rf in RESTCN_RECEPTIVE_FIELDS) + 1

    def test_width_mult_scales_params(self):
        small = restcn_fixed(width_mult=0.1).count_parameters()
        big = restcn_fixed(width_mult=0.2).count_parameters()
        assert big > 2 * small

    def test_gradients_reach_all_parameters(self):
        model = restcn_seed(width_mult=0.05)
        out = model(Tensor(RNG.standard_normal((1, 88, 12))))
        out.sum().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []


class TestTEMPONet:
    def test_searchable_has_7_pit_layers(self):
        assert len(pit_layers(temponet_seed(width_mult=0.125))) == 7

    def test_pit_rf_max_match_receptive_fields(self):
        layers = pit_layers(temponet_seed(width_mult=0.125))
        assert tuple(layer.rf_max for layer in layers) == TEMPONET_RECEPTIVE_FIELDS

    def test_forward_shape(self):
        model = temponet_fixed(width_mult=0.125)
        out = model(Tensor(RNG.standard_normal((3, 4, 256))))
        assert out.shape == (3, 1)

    def test_rejects_wrong_input_length(self):
        model = temponet_fixed(width_mult=0.125)
        with pytest.raises(ValueError):
            model(Tensor(RNG.standard_normal((1, 4, 128))))

    def test_full_scale_parameter_counts(self):
        """Seed ≈ 0.8M, hand-tuned ≈ 0.4M (paper: 939K / 423K)."""
        seed_params = temponet_fixed(None).count_parameters()
        hand_params = temponet_hand_tuned().count_parameters()
        assert 0.6e6 < seed_params < 1.1e6
        assert 0.3e6 < hand_params < 0.55e6
        assert 1.6 < seed_params / hand_params < 2.6

    def test_search_space_near_1e4(self):
        assert 1e4 <= search_space_size(temponet_seed(width_mult=0.125)) < 2e4

    def test_hand_tuned_dilations_applied(self):
        model = temponet_hand_tuned(width_mult=0.125)
        from repro.nn import CausalConv1d
        convs = [m for m in model.modules()
                 if isinstance(m, CausalConv1d) and m.kernel_size > 1]
        assert tuple(c.dilation for c in convs) == TEMPONET_HAND_DILATIONS

    def test_wrong_dilation_count_rejected(self):
        with pytest.raises(ValueError):
            TEMPONet(dilations=(1, 2), width_mult=0.125)

    def test_gradients_reach_all_parameters(self):
        model = temponet_seed(width_mult=0.125)
        out = model(Tensor(RNG.standard_normal((2, 4, 256))))
        out.sum().backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_custom_input_length(self):
        model = TEMPONet(input_length=128, width_mult=0.125,
                         rng=np.random.default_rng(0))
        assert model(Tensor(RNG.standard_normal((1, 4, 128)))).shape == (1, 1)

    def test_deterministic_construction(self):
        a = temponet_seed(width_mult=0.125, seed=9)
        b = temponet_seed(width_mult=0.125, seed=9)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.allclose(pa.data, pb.data)
