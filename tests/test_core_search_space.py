"""Tests for search-space accounting (paper Sec. IV-B)."""

import numpy as np
import pytest

from repro.core import (
    PITConv1d,
    enumerate_configurations,
    layer_choices,
    parameter_range,
    pit_layers,
    search_space_size,
)
from repro.models import restcn_seed, temponet_seed
from repro.nn import Module, ReLU, Sequential


class SmallModel(Module):
    def __init__(self):
        super().__init__()
        self.a = PITConv1d(2, 2, rf_max=5, rng=np.random.default_rng(0))
        self.b = PITConv1d(2, 2, rf_max=9, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.b(self.a(x))


class TestLayerChoices:
    def test_rf9_choices(self):
        layer = PITConv1d(2, 2, rf_max=9, rng=np.random.default_rng(0))
        assert layer_choices(layer) == [1, 2, 4, 8]

    def test_rf5_choices(self):
        layer = PITConv1d(2, 2, rf_max=5, rng=np.random.default_rng(0))
        assert layer_choices(layer) == [1, 2, 4]

    def test_rf2_single_choice(self):
        layer = PITConv1d(2, 2, rf_max=2, rng=np.random.default_rng(0))
        assert layer_choices(layer) == [1]


class TestSearchSpaceSize:
    def test_small_model(self):
        assert search_space_size(SmallModel()) == 3 * 4

    def test_restcn_matches_paper_order(self):
        """Paper: ~1e5 solutions for ResTCN."""
        size = search_space_size(restcn_seed(width_mult=0.05, seed=0))
        assert size == 3 * 3 * 4 * 4 * 5 * 5 * 6 * 6  # 129,600
        assert 1e5 <= size < 2e5

    def test_temponet_matches_paper_order(self):
        """Paper: ~1e4 alternatives for TEMPONet."""
        size = search_space_size(temponet_seed(width_mult=0.125, seed=0))
        assert size == 3 * 3 * 3 * 4 * 4 * 5 * 5  # 10,800
        assert 1e4 <= size < 2e4

    def test_plain_model_is_one(self):
        assert search_space_size(Sequential(ReLU())) == 1


class TestEnumeration:
    def test_count_matches_size(self):
        model = SmallModel()
        configs = list(enumerate_configurations(model))
        assert len(configs) == search_space_size(model)

    def test_configs_are_unique(self):
        configs = list(enumerate_configurations(SmallModel()))
        assert len(set(configs)) == len(configs)

    def test_all_entries_powers_of_two(self):
        for config in enumerate_configurations(SmallModel()):
            for d in config:
                assert d & (d - 1) == 0


class TestParameterRange:
    def test_min_below_max(self):
        ranges = parameter_range(restcn_seed(width_mult=0.05, seed=0))
        assert ranges["min_params"] < ranges["max_params"]

    def test_restores_gamma_state(self):
        model = SmallModel()
        model.a.set_dilation(2)
        before = model.a.mask.gamma_hat.data.copy()
        parameter_range(model)
        assert np.allclose(model.a.mask.gamma_hat.data, before)

    def test_paper_scale_restcn(self):
        """Paper: ResTCN space spans ~0.4M to ~3M parameters."""
        ranges = parameter_range(restcn_seed(width_mult=1.0, seed=0))
        assert ranges["min_params"] < 0.6e6
        assert ranges["max_params"] > 2.5e6

    def test_paper_scale_temponet(self):
        """Paper: TEMPONet space spans ~0.4M to ~0.9M parameters."""
        ranges = parameter_range(temponet_seed(width_mult=1.0, seed=0))
        assert ranges["min_params"] < 0.55e6
        assert ranges["max_params"] > 0.65e6
