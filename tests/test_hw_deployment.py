"""Tests for the deployment flow and the hardware-in-the-loop DSE hook.

The tentpole contract: a sweep run with ``point_evaluators=[gap8_evaluator
(...)]`` annotates every :class:`DSEPoint` with deployment metrics
(latency_ms, energy_mj, quantized_loss, …), the metrics survive the results
cache, and the N-D Pareto layer can minimize over them.
"""

import numpy as np
import pytest

from repro.core import PITConv1d, deployable_network, export_network
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import DSEEngine, evaluator_name, select_small_medium_large
from repro.hw import (
    GAP8PointEvaluator,
    deploy,
    format_table_iii,
    gap8_evaluator,
)
from repro.nn import CausalConv1d, Module, ReLU, mse_loss

SCHEDULE = dict(gamma_lr=0.2, max_prune_epochs=2, finetune_epochs=1)
METRIC_KEYS = {"latency_ms", "energy_mj", "quantized_loss",
               "float_test_loss", "fits_l2", "total_macs", "weight_bytes"}


class Tiny(Module):
    """Searchable two-layer TCN (same shape as the DSE engine tests)."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c = PITConv1d(1, 2, rf_max=9, rng=rng)
        self.r = ReLU()
        self.h = CausalConv1d(2, 1, 1, rng=rng)

    def forward(self, x):
        return self.h(self.r(self.c(x)))


class TinyFixed(Module):
    """Already-exported (fixed-dilation) counterpart."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c = CausalConv1d(1, 2, 3, dilation=2, rng=rng)
        self.r = ReLU()
        self.h = CausalConv1d(2, 1, 1, rng=rng)

    def forward(self, x):
        return self.h(self.r(self.c(x)))


def _loaders(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((12, 1, 10))
    y = np.concatenate([np.zeros((12, 1, 1)), x[:, :, :-1]], axis=2)
    train = DataLoader(ArrayDataset(x[:8], y[:8]), 4)
    val = DataLoader(ArrayDataset(x[8:], y[8:]), 4)
    return train, val


class TestDeployableNetwork:
    def test_searchable_model_is_exported(self):
        model = Tiny()
        network = deployable_network(model)
        assert network is not model
        assert not any(isinstance(m, PITConv1d) for m in network.modules())

    def test_fixed_model_passes_through(self):
        model = TinyFixed()
        assert deployable_network(model) is model

    def test_matches_explicit_export(self):
        model = Tiny()
        a = deployable_network(model)
        b = export_network(model)
        assert [type(m).__name__ for m in a.modules()] == \
               [type(m).__name__ for m in b.modules()]


class TestDeploy:
    def test_report_metrics_payload(self):
        train, val = _loaders()
        report = deploy(TinyFixed(), mse_loss, train, val, (1, 1, 10),
                        name="tiny")
        metrics = report.metrics()
        assert set(metrics) == METRIC_KEYS
        assert all(isinstance(v, float) for v in metrics.values())
        assert metrics["latency_ms"] > 0
        assert metrics["energy_mj"] > 0
        assert metrics["fits_l2"] == 1.0

    def test_deploy_accepts_searchable_model(self):
        train, val = _loaders()
        report = deploy(Tiny(), mse_loss, train, val, (1, 1, 10))
        assert report.latency_ms > 0

    def test_no_quantize_reports_float_loss(self):
        train, val = _loaders()
        report = deploy(TinyFixed(), mse_loss, train, val, (1, 1, 10),
                        quantize=False)
        assert report.quantized_loss == report.float_loss

    def test_quantized_loss_close_to_float(self):
        train, val = _loaders()
        report = deploy(TinyFixed(), mse_loss, train, val, (1, 1, 10))
        assert report.quantized_loss == pytest.approx(report.float_loss,
                                                      rel=0.1)

    def test_table_iii_renders_all_reports(self):
        train, val = _loaders()
        reports = [deploy(TinyFixed(), mse_loss, train, val, (1, 1, 10),
                          name=name) for name in ("small", "large")]
        table = format_table_iii(reports)
        assert "small" in table and "large" in table
        assert "latency [ms]" in table and "energy [mJ]" in table


class TestGap8Evaluator:
    def test_factory_returns_named_evaluator(self):
        train, val = _loaders()
        evaluator = gap8_evaluator(mse_loss, train, val, (1, 1, 10))
        assert isinstance(evaluator, GAP8PointEvaluator)
        assert evaluator_name(evaluator) == "gap8(bits=8,shape=1x1x10)"

    def test_cache_identity_tracks_quantization_settings(self):
        """bits/quantize/shape/config change the metrics, so they must
        change the cache identity — a --bits 4 resume may never be served
        int8 numbers cached by a --bits 8 sweep."""
        from repro.hw import GAP8Config
        train, val = _loaders()

        def name(**kw):
            return evaluator_name(
                gap8_evaluator(mse_loss, train, val, (1, 1, 10), **kw))

        default = name()
        assert name(bits=4) != default
        assert name(quantize=False) != default
        assert name(config=GAP8Config(mac_rate_d1=5.0)) != default
        assert name() == default  # deterministic across instances

    def test_evaluator_returns_metric_dict(self):
        train, val = _loaders()
        evaluator = gap8_evaluator(mse_loss, train, val, (1, 1, 10))
        metrics = evaluator(TinyFixed(), None)
        assert set(metrics) == METRIC_KEYS

    def test_evaluator_does_not_consume_loader_state(self):
        """Deploying must not advance the shared loaders' shuffle RNG —
        the determinism contract of the parallel sweep."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 1, 10))
        loader = DataLoader(ArrayDataset(x, x), 4, shuffle=True,
                            rng=np.random.default_rng(7))
        state = loader.rng.bit_generator.state
        evaluator = gap8_evaluator(mse_loss, loader, loader, (1, 1, 10))
        evaluator(TinyFixed(), None)
        assert loader.rng.bit_generator.state == state


class TestHardwareInTheLoopSweep:
    def _sweep(self, workers=0):
        train, val = _loaders()
        evaluator = gap8_evaluator(mse_loss, val, val, (1, 1, 10))
        engine = DSEEngine(Tiny, mse_loss, train, val, workers=workers,
                           trainer_kwargs=dict(SCHEDULE),
                           point_evaluators=[evaluator])
        return engine.run([0.0, 2.0], warmups=[0])

    def test_points_annotated_with_metrics(self):
        result = self._sweep()
        for point in result.points:
            assert set(point.metrics) == METRIC_KEYS
            assert point.metrics["latency_ms"] > 0

    def test_parallel_metrics_identical_to_serial(self):
        serial = self._sweep(workers=0)
        parallel = self._sweep(workers=2)
        for pa, pb in zip(serial.points, parallel.points):
            assert pa.metrics == pb.metrics  # bit-identical

    def test_hw_pareto_front(self):
        result = self._sweep()
        front = result.pareto(objectives=("params", "latency_ms", "loss"))
        assert front  # non-empty
        assert all(set(p.metrics) == METRIC_KEYS for p in front)

    def test_latency_aware_selection(self):
        result = self._sweep()
        sel = select_small_medium_large(result.points,
                                        objective="latency_ms",
                                        reference=0.0)
        assert sel["small"].metrics["latency_ms"] <= \
               sel["large"].metrics["latency_ms"]
