"""Differential test harness locking the conv backends together.

Every registered backend of :mod:`repro.autograd.backends` must agree with
the einsum reference on forward values *and* all gradients, over a grid of
dilations, strides and kernel sizes that includes ``C_in != C_out`` and a
temporal length not divisible by the stride.  The im2col fast path is also
validated independently against central finite differences via
:mod:`repro.autograd.gradcheck`, so the two backends can never be
"consistently wrong" together.
"""

import os

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    available_backends,
    check_gradients,
    conv1d_causal,
    current_backend,
    get_backend,
    set_backend,
    use_backend,
)

DILATIONS = (1, 2, 4, 8)
STRIDES = (1, 2, 3)
KERNELS = (1, 3, 9)

# C_in != C_out, and T=13 is not divisible by strides 2 or 3.
N, C_IN, C_OUT, T = 2, 3, 4, 13

GRID = [(d, s, k) for d in DILATIONS for s in STRIDES for k in KERNELS]

# Every non-reference backend is held to the reference automatically;
# registering a new backend adds it to the whole differential grid.
FAST_BACKENDS = [name for name in available_backends() if name != "einsum"]

# Comparison tolerance follows the substrate precision: under
# REPRO_DTYPE=float32 every backend computes in single precision, so
# last-ulp disagreements are ~1e-6 on O(10) values.
from repro.autograd import get_default_dtype

if np.dtype(get_default_dtype()) == np.float64:
    TOL = dict(atol=1e-12)
else:
    TOL = dict(atol=1e-4, rtol=1e-4)


def _inputs(kernel, requires_grad=False, seed=0):
    rng = np.random.default_rng(seed + 100 * kernel)
    x = Tensor(rng.standard_normal((N, C_IN, T)), requires_grad=requires_grad)
    w = Tensor(rng.standard_normal((C_OUT, C_IN, kernel)),
               requires_grad=requires_grad)
    b = Tensor(rng.standard_normal(C_OUT), requires_grad=requires_grad)
    return x, w, b


def _run(backend, dilation, stride, kernel):
    """Forward + backward under one backend; returns output and gradients."""
    x, w, b = _inputs(kernel, requires_grad=True)
    out = conv1d_causal(x, w, b, dilation=dilation, stride=stride,
                        backend=backend)
    out.sum().backward()
    return out.data, x.grad, w.grad, b.grad


class TestForwardParity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("dilation,stride,kernel", GRID)
    def test_matches_einsum(self, backend, dilation, stride, kernel):
        x, w, b = _inputs(kernel)
        ref = conv1d_causal(x, w, b, dilation=dilation, stride=stride,
                            backend="einsum")
        fast = conv1d_causal(x, w, b, dilation=dilation, stride=stride,
                             backend=backend)
        assert ref.shape == fast.shape
        assert np.allclose(ref.data, fast.data, **TOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_no_bias(self, backend):
        x, w, _ = _inputs(3)
        ref = conv1d_causal(x, w, dilation=2, backend="einsum")
        fast = conv1d_causal(x, w, dilation=2, backend=backend)
        assert np.allclose(ref.data, fast.data, **TOL)

    def test_all_registered_backends_agree(self):
        """Future backends are automatically held to the same contract."""
        x, w, b = _inputs(9)
        reference = conv1d_causal(x, w, b, dilation=4, stride=2,
                                  backend="einsum").data
        for name in available_backends():
            out = conv1d_causal(x, w, b, dilation=4, stride=2, backend=name)
            assert np.allclose(out.data, reference, **TOL), name


class TestGradientParity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("dilation,stride,kernel", GRID)
    def test_all_gradients_match(self, backend, dilation, stride, kernel):
        _, gx_ref, gw_ref, gb_ref = _run("einsum", dilation, stride, kernel)
        _, gx, gw, gb = _run(backend, dilation, stride, kernel)
        assert np.allclose(gx, gx_ref, **TOL)
        assert np.allclose(gw, gw_ref, **TOL)
        assert np.allclose(gb, gb_ref, **TOL)

    @pytest.mark.parametrize("backend", ["im2col", "fft"])
    @pytest.mark.parametrize("dilation,stride,kernel",
                             [(1, 1, 1), (2, 1, 3), (4, 2, 3), (8, 3, 9),
                              (1, 3, 9), (2, 2, 9)])
    def test_fast_path_gradcheck(self, backend, dilation, stride, kernel):
        """The fast paths against finite differences, not just the reference."""
        x, w, b = _inputs(kernel, requires_grad=True, seed=7)
        check_gradients(
            lambda x, w, b: conv1d_causal(x, w, b, dilation=dilation,
                                          stride=stride, backend=backend),
            [x, w, b])


class TestStackedKernelParity:
    """The stacked (leading model axis) kernels against M per-model calls.

    Auto-discovers every registered backend, like the unstacked harness: a
    newly registered backend is covered by its inherited base-class loop
    until it provides batched kernels, and by this grid either way.
    """

    M = 3
    STACK_GRID = [(1, 1, 3), (2, 1, 9), (4, 2, 3), (2, 3, 9), (1, 2, 1)]

    def _stacked_inputs(self, kernel, requires_grad=False, seed=0):
        rng = np.random.default_rng(seed + 17 * kernel)
        x = Tensor(rng.standard_normal((self.M, N, C_IN, T)),
                   requires_grad=requires_grad)
        w = Tensor(rng.standard_normal((self.M, C_OUT, C_IN, kernel)),
                   requires_grad=requires_grad)
        b = Tensor(rng.standard_normal((self.M, C_OUT)),
                   requires_grad=requires_grad)
        return x, w, b

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("dilation,stride,kernel", STACK_GRID)
    def test_stacked_matches_per_model(self, backend, dilation, stride,
                                       kernel):
        from repro.autograd import conv1d_causal_stacked
        x, w, b = self._stacked_inputs(kernel, requires_grad=True)
        out = conv1d_causal_stacked(x, w, b, dilation=dilation, stride=stride,
                                    backend=backend)
        rng = np.random.default_rng(99)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)
        for m in range(self.M):
            xm = Tensor(x.data[m], requires_grad=True)
            wm = Tensor(w.data[m], requires_grad=True)
            bm = Tensor(b.data[m], requires_grad=True)
            ref = conv1d_causal(xm, wm, bm, dilation=dilation, stride=stride,
                                backend="einsum")
            ref.backward(upstream[m])
            assert np.allclose(out.data[m], ref.data, **TOL), (backend, m)
            assert np.allclose(x.grad[m], xm.grad, **TOL), (backend, m)
            assert np.allclose(w.grad[m], wm.grad, **TOL), (backend, m)
            assert np.allclose(b.grad[m], bm.grad, **TOL), (backend, m)

    def test_base_class_loop_covers_unbatched_backends(self):
        """A backend that never heard of stacking still works: the
        ConvBackend base supplies per-model loop kernels."""
        from repro.autograd import conv1d_causal_stacked, register_backend
        from repro.autograd.backends import _REGISTRY, ConvBackend, EinsumBackend

        class MinimalBackend(ConvBackend):
            name = "minimal-test"
            _ref = EinsumBackend()

            def forward(self, xp, w, dilation, stride, t, scratch=None):
                return self._ref.forward(xp, w, dilation, stride, t)

            def grad_input(self, grad, w, xp_shape, dilation, stride, t,
                           scratch=None):
                return self._ref.grad_input(grad, w, xp_shape, dilation,
                                            stride, t)

            def grad_weight(self, grad, xp, w_shape, dilation, stride, t,
                            scratch=None):
                return self._ref.grad_weight(grad, xp, w_shape, dilation,
                                             stride, t)

        register_backend(MinimalBackend())
        try:
            x, w, b = self._stacked_inputs(3, requires_grad=True)
            out = conv1d_causal_stacked(x, w, b, dilation=2,
                                        backend="minimal-test")
            out.sum().backward()
            ref = conv1d_causal_stacked(
                Tensor(x.data, requires_grad=True),
                Tensor(w.data, requires_grad=True),
                Tensor(b.data, requires_grad=True), dilation=2,
                backend="einsum")
            assert np.allclose(out.data, ref.data, **TOL)
        finally:
            _REGISTRY.pop("minimal-test", None)

    def test_stacked_validates_shapes(self):
        from repro.autograd import conv1d_causal_stacked
        x, w, _ = self._stacked_inputs(3)
        with pytest.raises(ValueError, match="expected input"):
            conv1d_causal_stacked(Tensor(np.zeros((2, 3, 5))), w)
        with pytest.raises(ValueError, match="stack"):
            conv1d_causal_stacked(
                x, Tensor(np.zeros((self.M + 1, C_OUT, C_IN, 3))))


class TestBackendSelection:
    def test_default_honours_environment(self):
        # CI runs the suite twice: bare (einsum default) and with
        # REPRO_CONV_BACKEND=im2col steering every untagged conv call.
        expected = os.environ.get("REPRO_CONV_BACKEND") or "einsum"
        assert current_backend() == expected
        assert get_backend().name == expected

    def test_set_backend_round_trip(self):
        previous = current_backend()
        set_backend("im2col")
        try:
            assert current_backend() == "im2col"
            assert get_backend().name == "im2col"
        finally:
            set_backend(previous)

    def test_use_backend_restores_on_exit(self):
        previous = current_backend()
        with use_backend("im2col") as backend:
            assert backend.name == "im2col"
            assert current_backend() == "im2col"
        assert current_backend() == previous

    def test_use_backend_restores_on_error(self):
        previous = current_backend()
        with pytest.raises(RuntimeError):
            with use_backend("im2col"):
                raise RuntimeError("boom")
        assert current_backend() == previous

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown conv backend"):
            conv1d_causal(Tensor(np.zeros((1, 1, 4))),
                          Tensor(np.zeros((1, 1, 2))), backend="cudnn")
        with pytest.raises(ValueError):
            set_backend("not-a-backend")

    def test_bogus_env_var_does_not_crash_import(self):
        """A typo'd REPRO_CONV_BACKEND must fail at first use with a clear
        error, not at `import repro` (which would break even --help)."""
        import subprocess
        import sys
        script = (
            "import repro\n"
            "from repro.autograd import conv1d_causal, Tensor\n"
            "import numpy as np\n"
            "try:\n"
            "    conv1d_causal(Tensor(np.zeros((1, 1, 4))),\n"
            "                  Tensor(np.zeros((1, 1, 2))))\n"
            "except ValueError as exc:\n"
            "    assert 'im2coll' in str(exc), exc\n"
            "    print('LAZY-OK')\n")
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={**os.environ, "REPRO_CONV_BACKEND": "im2coll",
                 "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                            "..", "src")})
        assert proc.returncode == 0, proc.stderr
        assert "LAZY-OK" in proc.stdout

    def test_global_default_steers_untagged_calls(self):
        x, w, b = _inputs(3)
        ref = conv1d_causal(x, w, b, dilation=2).data
        with use_backend("im2col"):
            fast = conv1d_causal(x, w, b, dilation=2).data
        assert np.allclose(ref, fast, atol=1e-12)

    def test_backward_uses_forward_backend(self):
        """The tape captures the backend resolved at forward time."""
        x, w, b = _inputs(3, requires_grad=True)
        with use_backend("im2col"):
            out = conv1d_causal(x, w, b, dilation=2)
        # Default has switched back to einsum; backward must still succeed
        # and match the einsum-end-to-end gradients.
        out.sum().backward()
        _, gx_ref, gw_ref, gb_ref = _run("einsum", 2, 1, 3)
        assert np.allclose(x.grad, gx_ref, atol=1e-12)
        assert np.allclose(w.grad, gw_ref, atol=1e-12)
        assert np.allclose(b.grad, gb_ref, atol=1e-12)


class TestLegacyBackendSignature:
    def test_scratchless_backend_survives_compiled_replay(self):
        """Backends written against the pre-scratch kernel interface must
        keep working under the compiled step (they just allocate fresh
        buffers like eager dispatch does)."""
        from repro.autograd import register_backend
        from repro.autograd.backends import _REGISTRY, EinsumBackend
        from repro.core.trainer import make_training_step
        from repro.nn import CausalConv1d, GlobalAvgPool1d, Linear, Sequential
        from repro.nn.losses import mse_loss

        class LegacyBackend(EinsumBackend):
            name = "legacy-test"

            def forward(self, xp, w, dilation, stride, t):
                return super().forward(xp, w, dilation, stride, t)

            def grad_input(self, grad, w, xp_shape, dilation, stride, t):
                return super().grad_input(grad, w, xp_shape, dilation,
                                          stride, t)

            def grad_weight(self, grad, xp, w_shape, dilation, stride, t):
                return super().grad_weight(grad, xp, w_shape, dilation,
                                           stride, t)

        register_backend(LegacyBackend())
        try:
            rng = np.random.default_rng(0)
            model = Sequential(
                CausalConv1d(2, 3, kernel_size=3, rng=rng,
                             backend="legacy-test"),
                GlobalAvgPool1d(), Linear(3, 1, rng=rng))
            step = make_training_step(model, mse_loss, compile_step=True,
                                      graph_opt="default")
            x, y = rng.standard_normal((2, 2, 12)), rng.standard_normal((2, 1))
            first = step(x, y)    # trace (eager kernels, no scratch)
            second = step(x, y)   # replay goes through the scratch path
            assert step.fallback_reason is None
            # No parameter updates between calls: replay == trace exactly.
            assert first == second
        finally:
            _REGISTRY.pop("legacy-test", None)


class TestLayerIntegration:
    def test_causal_conv_layer_backend_parity(self):
        from repro.nn import CausalConv1d
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, C_IN, T))
        outs = {}
        for name in available_backends():
            layer = CausalConv1d(C_IN, C_OUT, 5, dilation=2, stride=2,
                                 rng=np.random.default_rng(11), backend=name)
            assert layer.backend == name
            outs[name] = layer(Tensor(x)).data
        for name in available_backends():
            assert np.allclose(outs["einsum"], outs[name], **TOL), name

    def test_pit_conv_layer_backend_parity(self):
        from repro.core import PITConv1d
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, C_IN, T))
        outs = {}
        for name in ("einsum", "im2col"):
            layer = PITConv1d(C_IN, C_OUT, rf_max=9,
                              rng=np.random.default_rng(13), backend=name)
            outs[name] = layer(Tensor(x)).data
        assert np.allclose(outs["einsum"], outs["im2col"], atol=1e-12)

    def test_export_propagates_backend(self):
        from repro.core import PITConv1d
        from repro.core.export import export_conv
        layer = PITConv1d(2, 2, rf_max=5, rng=np.random.default_rng(0),
                          backend="im2col")
        assert export_conv(layer).backend == "im2col"
