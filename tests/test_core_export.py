"""Tests for network export and effective-parameter accounting."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import (
    PITConv1d,
    effective_parameters,
    export_network,
    network_dilations,
    network_summary,
    pit_layers,
)
from repro.models import ResTCN, restcn_seed, temponet_seed
from repro.nn import CausalConv1d

RNG = np.random.default_rng(17)


class TestExportNetwork:
    def test_replaces_all_pit_layers(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        exported = export_network(seed)
        assert pit_layers(exported) == []
        assert len(pit_layers(seed)) == 8  # original untouched

    def test_forward_identical_after_export(self):
        seed = temponet_seed(width_mult=0.125, seed=0)
        for i, layer in enumerate(pit_layers(seed)):
            choices = [1, 2, 4]
            layer.set_dilation(choices[i % 3])
        seed.eval()
        exported = export_network(seed)
        exported.eval()
        x = Tensor(RNG.standard_normal((2, 4, 256)))
        assert np.allclose(seed(x).data, exported(x).data, atol=1e-10)

    def test_export_is_deep_copy(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        exported = export_network(seed)
        first_conv = [m for m in exported.modules()
                      if isinstance(m, CausalConv1d) and m.kernel_size > 1][0]
        first_conv.weight.data[...] = 0.0
        assert not np.allclose(pit_layers(seed)[0].weight.data, 0.0)

    def test_exported_dilations_preserved(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        target = (1, 2, 4, 8, 1, 2, 16, 32)
        for layer, d in zip(pit_layers(seed), target):
            layer.set_dilation(d)
        exported = export_network(seed)
        # The head conv (k=1) and downsample convs report d=1 too; check the
        # searchable positions are present in order.
        dils = network_dilations(exported)
        searchable = [d for d in dils][:len(target) + 4]
        assert all(d in dils for d in target)

    def test_exported_param_count_matches_effective(self):
        seed = temponet_seed(width_mult=0.125, seed=0)
        for layer in pit_layers(seed):
            layer.set_dilation(layer.mask.rf_max > 5 and 4 or 2)
        assert export_network(seed).count_parameters() == effective_parameters(seed)


class TestNetworkDilations:
    def test_searchable_model(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        dils = network_dilations(seed)
        assert len([m for m in seed.modules() if isinstance(m, PITConv1d)]) == 8

    def test_reflects_set_dilation(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        for layer in pit_layers(seed):
            layer.set_dilation(2)
        dils = network_dilations(seed)
        assert dils[:8].count(2) >= 8 or 2 in dils


class TestEffectiveParameters:
    def test_equals_count_at_d1(self):
        """At d=1 nothing is masked except γ̂ (search-only params)."""
        seed = restcn_seed(width_mult=0.05, seed=0)
        gamma_count = sum(layer.mask.gamma_hat.data.size for layer in pit_layers(seed))
        assert effective_parameters(seed) == seed.count_parameters() - gamma_count

    def test_decreases_with_dilation(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        full = effective_parameters(seed)
        for layer in pit_layers(seed):
            layer.set_dilation(max(layer.mask.rf_max > 5 and 8 or 4, 2))
        assert effective_parameters(seed) < full

    def test_plain_model_is_count_parameters(self):
        model = ResTCN(width_mult=0.05, rng=np.random.default_rng(0))
        assert effective_parameters(model) == model.count_parameters()


class TestNetworkSummary:
    def test_fields(self):
        seed = restcn_seed(width_mult=0.05, seed=0)
        summary = network_summary(seed)
        assert set(summary) == {"dilations", "params", "pit_params_effective"}
        assert summary["params"] >= summary["pit_params_effective"]


class TestNetworkReceptiveField:
    """Composed receptive field / total stride vs brute-force probing.

    Regression: composing per-layer receptive fields by summing
    ``(rf_l - 1)`` is wrong once any earlier layer has ``stride > 1`` —
    a downstream tap then reaches ``stride`` input samples further back.
    The probe perturbs each input position and records which ones change
    the *last* output frame; the span between the oldest and newest
    affecting position is the ground-truth receptive field.
    """

    def _probe_span(self, net, channels, length, frame=-1):
        from repro.autograd import no_grad
        rng = np.random.default_rng(11)
        x = rng.standard_normal((1, channels, length))
        with no_grad():
            base = net(Tensor(x)).data
        affecting = []
        for p in range(length):
            bumped = x.copy()
            bumped[0, :, p] += 100.0  # large: survives max-pools too
            with no_grad():
                out = net(Tensor(bumped)).data
            if np.abs(out[0, :, frame] - base[0, :, frame]).max() > 0:
                affecting.append(p)
        assert affecting, "no input position reaches the probed output"
        return affecting

    def _nets(self):
        from repro.core.export import (
            network_receptive_field,
            network_total_stride,
        )
        from repro.nn import AvgPool1d, MaxPool1d, ReLU, Sequential

        rng = np.random.default_rng(3)
        conv = lambda ci, co, k, **kw: CausalConv1d(ci, co, k, rng=rng, **kw)
        return network_receptive_field, network_total_stride, [
            Sequential(conv(2, 3, 3, dilation=2), conv(3, 2, 3, dilation=4)),
            Sequential(conv(2, 3, 3, stride=2), conv(3, 2, 3, dilation=2)),
            Sequential(conv(2, 3, 3, stride=2), ReLU(),
                       conv(3, 3, 3, stride=2), conv(3, 2, 2, dilation=4)),
            Sequential(conv(2, 4, 5, dilation=2), MaxPool1d(2, 2),
                       conv(4, 3, 3), AvgPool1d(3, 2)),
        ]

    def test_composed_span_matches_brute_force(self):
        rf_of, _, nets = self._nets()
        for net in nets:
            net.eval()
            rf = rf_of(net)
            affecting = self._probe_span(net, 2, rf + 7)
            span = affecting[-1] - affecting[0] + 1
            assert span == rf, f"{net!r}: probed {span}, composed {rf}"

    def test_total_stride_shifts_consecutive_frames(self):
        rf_of, stride_of, nets = self._nets()
        for net in nets:
            net.eval()
            stride = stride_of(net)
            length = rf_of(net) + 3 * stride + 7
            last = self._probe_span(net, 2, length, frame=-1)
            prev = self._probe_span(net, 2, length, frame=-2)
            assert last[0] - prev[0] == stride
            assert last[-1] - prev[-1] == stride

    def test_layer_receptive_field_is_stride_independent(self):
        # The layer-local property stays (K-1)*d + 1; stride only changes
        # how spans compose across layers (network_receptive_field).
        a = CausalConv1d(2, 2, 3, dilation=4, stride=1,
                         rng=np.random.default_rng(0))
        b = CausalConv1d(2, 2, 3, dilation=4, stride=2,
                         rng=np.random.default_rng(0))
        assert a.receptive_field == b.receptive_field == 9

    def test_restcn_property_routes_through_composition(self):
        from repro.core.export import network_receptive_field
        model = ResTCN(width_mult=0.05, rng=np.random.default_rng(0))
        assert model.receptive_field == network_receptive_field(model) == 121

    def test_searchable_layers_use_rf_max(self):
        from repro.core.export import network_receptive_field
        from repro.nn import Sequential
        layer = PITConv1d(2, 2, rf_max=9, rng=np.random.default_rng(0))
        assert network_receptive_field(Sequential(layer)) == 9
