"""Multi-tenant pool semantics and the asyncio streaming server.

The pool tests pin the attach/detach/alignment contract (a mid-stream
attach is fresh-stream-equal only from a phase-aligned tick, pre-warm
frames are flagged); the server tests run real TCP round-trips with the
bundled client and check that concurrent tenants each get exactly the
frames a dedicated single-stream executor would have produced.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.autograd import get_default_dtype
from repro.nn import CausalConv1d, ReLU, Sequential
from repro.serving import StreamServer, StreamingExecutor, StreamingPool
from repro.serving.client import stream_samples

RNG = np.random.default_rng(321)

if np.dtype(get_default_dtype()) == np.float64:
    TOL = dict(atol=1e-12)
else:
    TOL = dict(atol=1e-4, rtol=1e-4)


def make_net(strided=False, seed=0):
    rng = np.random.default_rng(seed)
    if strided:
        return Sequential(CausalConv1d(2, 5, 3, stride=2, rng=rng), ReLU(),
                          CausalConv1d(5, 3, 3, stride=2, rng=rng)).eval()
    return Sequential(CausalConv1d(2, 5, 3, dilation=2, rng=rng), ReLU(),
                      CausalConv1d(5, 3, 3, dilation=4, rng=rng)).eval()


def fresh_frames(net, samples):
    """Per-tick frames a dedicated fresh stream would emit for (T, C)."""
    executor = StreamingExecutor(net, batch=1)
    out = executor.push(samples.T[None])
    return [out[0, :, i] for i in range(out.shape[2])]


class TestStreamingPool:
    def test_attach_until_full(self):
        pool = StreamingPool(make_net(), capacity=2)
        assert pool.attach() == 0
        assert pool.attach() == 1
        with pytest.raises(RuntimeError, match="full"):
            pool.attach()
        pool.detach(0)
        assert pool.free_slots == 1
        assert pool.attach() == 0

    def test_detach_unknown_slot(self):
        pool = StreamingPool(make_net(), capacity=2)
        with pytest.raises(KeyError):
            pool.detach(1)

    def test_barrier_missing_sample_raises(self):
        pool = StreamingPool(make_net(), capacity=2)
        a, b = pool.attach(), pool.attach()
        pool.tick({a: np.ones(2), b: np.ones(2)})  # both activate
        with pytest.raises(ValueError, match="missing"):
            pool.tick({a: np.ones(2)})

    def test_extra_sample_raises(self):
        pool = StreamingPool(make_net(), capacity=2)
        a = pool.attach()
        pool.tick({a: np.ones(2)})
        with pytest.raises(ValueError, match="not active"):
            pool.tick({a: np.ones(2), 1: np.ones(2)})

    def test_pending_waits_for_alignment(self):
        pool = StreamingPool(make_net(strided=True), capacity=2)
        stride = pool.executor.total_stride
        assert stride == 4
        a = pool.attach()
        pool.tick({a: RNG.standard_normal(2)})  # ticks=1: now unaligned
        b = pool.attach()
        assert b in pool.pending_slots
        with pytest.raises(ValueError, match="not active"):
            pool.tick({a: np.ones(2), b: np.ones(2)})
        while pool.ticks % stride:
            pool.tick({a: RNG.standard_normal(2)})
        pool.tick({a: RNG.standard_normal(2), b: RNG.standard_normal(2)})
        assert b in pool.active_slots

    def test_single_stream_matches_fresh_executor(self):
        net = make_net()
        pool = StreamingPool(net, capacity=3)
        slot = pool.attach()
        samples = RNG.standard_normal((9, 2))
        want = fresh_frames(net, samples)
        got = []
        for sample in samples:
            for out in pool.tick({slot: sample}):
                assert out.slot == slot
                got.append(out.frame)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.allclose(g, w, **TOL)

    def test_midstream_attach_is_fresh_stream_equal_once_warm(self):
        net = make_net(strided=True)
        pool = StreamingPool(net, capacity=2)
        stride = pool.executor.total_stride
        warmup = pool.executor.warmup_ticks
        a = pool.attach()
        for _ in range(2 * stride):  # advance to an aligned tick
            pool.tick({a: RNG.standard_normal(2)})
        b = pool.attach()
        samples_b = RNG.standard_normal((3 * stride, 2))
        want = fresh_frames(net, samples_b)
        got = []
        for sample in samples_b:
            outs = pool.tick({a: RNG.standard_normal(2), b: sample})
            for out in outs:
                if out.slot == b:
                    got.append(out)
        assert len(got) == len(want)
        for out, w in zip(got, want):
            assert np.allclose(out.frame, w, **TOL)
            # warm iff the slot has seen warmup_ticks of its own samples
            age = out.tick - 2 * stride
            assert out.warm == (age >= warmup)

    def test_outputs_only_for_active_slots(self):
        pool = StreamingPool(make_net(), capacity=3)
        a = pool.attach()
        outs = pool.tick({a: np.ones(2)})
        assert {o.slot for o in outs} <= {a}


def run(coro):
    return asyncio.run(coro)


class TestStreamServer:
    def test_single_client_round_trip(self):
        net = make_net()
        samples = RNG.standard_normal((10, 2))
        want = fresh_frames(net, samples)

        async def scenario():
            server = StreamServer(net, capacity=2, max_sessions=1)
            host, port = await server.start()
            result = await stream_samples(host, port, samples)
            await server.wait_closed()
            return result

        result = run(scenario())
        assert result["error"] is None
        hello = result["hello"]
        assert hello["channels"] == 2
        assert hello["out_channels"] == 3
        assert hello["warmup_ticks"] == 1
        assert hello["period"] == 1
        frames = result["frames"]
        assert len(frames) == len(want)
        for msg, w in zip(frames, want):
            assert np.allclose(msg["data"], w, **TOL)
            assert msg["warm"] is True

    def test_concurrent_clients_each_get_their_own_frames(self):
        net = make_net()
        xs = [RNG.standard_normal((12, 2)) for _ in range(3)]
        wants = [fresh_frames(net, x) for x in xs]

        async def scenario():
            server = StreamServer(net, capacity=4, max_sessions=3)
            host, port = await server.start()
            results = await asyncio.gather(
                *(stream_samples(host, port, x) for x in xs))
            await server.wait_closed()
            return results

        results = run(scenario())
        for result, want in zip(results, wants):
            assert result["error"] is None
            assert len(result["frames"]) == len(want)
            for msg, w in zip(result["frames"], want):
                assert np.allclose(msg["data"], w, **TOL)

    def test_backpressure_bounded_queue_still_serves_everything(self):
        net = make_net()
        samples = RNG.standard_normal((50, 2))
        want = fresh_frames(net, samples)

        async def scenario():
            server = StreamServer(net, capacity=1, queue_size=4,
                                  max_sessions=1)
            host, port = await server.start()
            result = await stream_samples(host, port, samples, chunk=50)
            await server.wait_closed()
            return result

        result = run(scenario())
        assert len(result["frames"]) == len(want)
        for msg, w in zip(result["frames"], want):
            assert np.allclose(msg["data"], w, **TOL)

    def test_server_full_refuses_with_error(self):
        net = make_net()

        async def scenario():
            server = StreamServer(net, capacity=1, max_sessions=1)
            host, port = await server.start()
            # First client occupies the only slot and idles.
            reader, writer = await asyncio.open_connection(host, port)
            hello = json.loads(await reader.readline())
            assert hello["type"] == "hello"
            second = await stream_samples(host, port, np.ones((2, 2)))
            writer.close()  # EOF -> first session detaches -> shutdown
            await server.wait_closed()
            return second

        second = run(scenario())
        assert second["error"] is not None
        assert "full" in second["error"]
        assert second["frames"] == []

    def test_wrong_channel_count_errors(self):
        net = make_net()

        async def scenario():
            server = StreamServer(net, capacity=1, max_sessions=1)
            host, port = await server.start()
            result = await stream_samples(host, port, np.ones((4, 3)))
            await server.wait_closed()
            return result

        result = run(scenario())
        assert "channels" in result["error"]

    def test_strided_model_flags_prewarm_frames(self):
        net = make_net(strided=True)
        warmup = StreamingExecutor(net).warmup_ticks
        samples = RNG.standard_normal((4 * warmup, 2))

        async def scenario():
            server = StreamServer(net, capacity=2, max_sessions=1)
            host, port = await server.start()
            result = await stream_samples(host, port, samples)
            await server.wait_closed()
            return result

        result = run(scenario())
        assert result["hello"]["warmup_ticks"] == warmup
        for msg in result["frames"]:
            assert msg["warm"] == (msg["tick"] >= warmup)


class TestServerRobustness:
    """The barrier makes co-tenants each other's problem; these tests pin
    the defenses: idle-client timeouts free pool slots, oversized lines
    draw an error instead of silently killing the reader, and a client
    dying mid-stream never stalls the survivors' barrier."""

    def test_idle_client_disconnected_and_slot_freed(self):
        net = make_net()
        samples = RNG.standard_normal((6, 2))
        want = fresh_frames(net, samples)

        async def scenario():
            server = StreamServer(net, capacity=1, max_sessions=2,
                                  client_timeout=0.15)
            host, port = await server.start()
            # The idler occupies the only slot and sends nothing.
            reader, writer = await asyncio.open_connection(host, port)
            hello = json.loads(await reader.readline())
            assert hello["type"] == "hello"
            error = json.loads(await asyncio.wait_for(reader.readline(), 5))
            assert error["type"] == "error"
            assert "idle timeout" in error["error"]
            assert await asyncio.wait_for(reader.readline(), 5) == b""
            writer.close()
            # Its slot is free again: a second client streams normally.
            result = await stream_samples(host, port, samples)
            await asyncio.wait_for(server.wait_closed(), 5)
            return result

        result = run(scenario())
        assert result["error"] is None
        assert len(result["frames"]) == len(want)
        for msg, w in zip(result["frames"], want):
            assert np.allclose(msg["data"], w, **TOL)

    def test_oversized_line_draws_error(self):
        net = make_net()

        async def scenario():
            server = StreamServer(net, capacity=1, max_sessions=1,
                                  max_line=64)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            json.loads(await reader.readline())  # hello
            writer.write(b"[" + b"[1.0, 1.0], " * 32 + b"[1.0, 1.0]]\n")
            await writer.drain()
            msg = json.loads(await asyncio.wait_for(reader.readline(), 5))
            assert await asyncio.wait_for(reader.readline(), 5) == b""
            writer.close()
            await asyncio.wait_for(server.wait_closed(), 5)
            return msg

        msg = run(scenario())
        assert msg["type"] == "error"
        assert "exceeds 64 bytes" in msg["error"]

    def test_client_dying_mid_stream_does_not_stall_cotenant(self):
        net = make_net()
        samples = RNG.standard_normal((12, 2))
        want = fresh_frames(net, samples)

        async def scenario():
            server = StreamServer(net, capacity=2, max_sessions=2)
            host, port = await server.start()
            # The victim queues samples, then its connection dies abruptly
            # (no detach, no EOF handshake) mid-stream.
            vr, vw = await asyncio.open_connection(host, port)
            json.loads(await vr.readline())  # hello
            vw.write((json.dumps(np.ones((3, 2)).tolist()) + "\n").encode())
            await vw.drain()
            vw.transport.abort()
            # The co-tenant must still receive every one of its frames.
            result = await asyncio.wait_for(
                stream_samples(host, port, samples), 10)
            await asyncio.wait_for(server.wait_closed(), 10)
            return result

        result = run(scenario())
        assert result["error"] is None
        assert len(result["frames"]) == len(want)
        for msg, w in zip(result["frames"], want):
            assert np.allclose(msg["data"], w, **TOL)

    def test_injected_conn_drop_does_not_stall_survivor(self, monkeypatch):
        """The fault harness aborts a live transport server-side mid-tick
        (the exact failure mode of a client dying between ticks); the
        survivor's barrier must keep advancing."""
        from repro.testing import faults
        monkeypatch.setenv(faults.ENV_FAULTS, "conn_drop@tick=3")
        faults.reset()
        net = make_net()
        samples = RNG.standard_normal((10, 2))
        want = fresh_frames(net, samples)

        async def scenario():
            server = StreamServer(net, capacity=2, max_sessions=2)
            host, port = await server.start()
            # Victim attaches first (slot 0, the fault's default target)
            # and queues plenty of samples.
            vr, vw = await asyncio.open_connection(host, port)
            json.loads(await vr.readline())  # hello
            vw.write((json.dumps(np.ones((20, 2)).tolist()) + "\n").encode())
            await vw.drain()
            survivor = asyncio.ensure_future(
                stream_samples(host, port, samples))
            try:  # drain the victim until the abort surfaces
                while await asyncio.wait_for(vr.readline(), 10):
                    pass
            except (ConnectionError, asyncio.TimeoutError):
                pass
            vw.close()
            result = await asyncio.wait_for(survivor, 10)
            await asyncio.wait_for(server.wait_closed(), 10)
            return result

        result = run(scenario())
        faults.reset()
        assert result["error"] is None
        assert len(result["frames"]) == len(want)
