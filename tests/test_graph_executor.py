"""Differential harness for the graph-capture executor.

Locks the compiled training step to eager execution: identical losses,
identical parameter gradients, identical trained weights, identical final
γ̂ masks — over a grid of conv configurations (dilation/stride), the two
TCN seeds, the RNN baselines, and the full three-phase PIT trainer.

Also covers the executor's operational behaviour: per-shape re-tracing for
short final batches, and the permanent eager fallback for value-dependent
(capture-unsafe) models.

The env-gated perf smoke at the bottom (``REPRO_RUN_PERF=1``) records
eager-vs-compiled step timings on a TEMPONet-sized model to
``BENCH_graph_executor.json``.
"""

import copy
import json
import os
import time

import numpy as np
import pytest

import repro
from repro.autograd import CompiledStep, EagerStep, set_default_dtype
from repro.core import PITTrainer, network_dilations, size_regularizer
from repro.core.channel_mask import PITChannelConv1d
from repro.core.trainer import make_training_step, train_plain
from repro.data import ArrayDataset, DataLoader
from repro.models import restcn_seed, temponet_seed
from repro.models.rnn_baselines import HeartRateGRU, MusicLSTM
from repro.nn import (
    CausalConv1d,
    GlobalAvgPool1d,
    Linear,
    Module,
    ReLU,
    Sequential,
    mae_loss,
    mse_loss,
    polyphonic_nll,
)
from repro.optim import Adam


@pytest.fixture(params=["interp", "source"], autouse=True)
def graph_exec_leg(request, monkeypatch):
    """Route the whole parity surface through both replay executors.

    Every test in this module runs twice: once with the interpreted replay
    and once with the codegen (generated-source) executor, selected via
    the same REPRO_GRAPH_EXEC default the CI leg uses.  Source-mode replay
    must be bit-identical, so no assertion changes — only the executor.
    """
    monkeypatch.setenv("REPRO_GRAPH_EXEC", request.param)
    return request.param


def batches_of(xshape, yshape, count=3, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.standard_normal(xshape), rng.standard_normal(yshape))
            for _ in range(count)]


def assert_same_grads(m1, m2, context=""):
    g1, g2 = dict(m1.named_parameters()), dict(m2.named_parameters())
    assert g1.keys() == g2.keys()
    for name in g1:
        a, b = g1[name].grad, g2[name].grad
        assert (a is None) == (b is None), f"{context}: grad presence {name}"
        if a is not None:
            assert np.array_equal(a, b), f"{context}: grad mismatch {name}"


def assert_same_state(m1, m2, context=""):
    s1, s2 = m1.state_dict(), m2.state_dict()
    assert s1.keys() == s2.keys()
    for key in s1:
        assert np.array_equal(s1[key], s2[key]), f"{context}: state {key}"


def run_parity(make_model, batches, loss_fn, extra_loss_fn=None, lr=1e-3,
               context="", expect_compiled=True):
    """Train two copies — one eager, one compiled — on identical batches.

    Asserts bit-equal losses on every step and bit-equal gradients, weights
    and buffers at the end.  Returns the compiled step for introspection.
    """
    eager_model = make_model()
    compiled_model = copy.deepcopy(eager_model)
    runners = {}
    for label, model, compile_step in (("eager", eager_model, False),
                                       ("compiled", compiled_model, True)):
        extra = (lambda m=model: extra_loss_fn(m)) if extra_loss_fn else None
        runners[label] = (model,
                          make_training_step(model, loss_fn, extra_loss=extra,
                                             compile_step=compile_step),
                          Adam(model.parameters(), lr=lr))
    losses = {"eager": [], "compiled": []}
    for x, y in batches:
        for label, (model, step, optimizer) in runners.items():
            model.train()
            optimizer.zero_grad()
            values = step(x, y)
            optimizer.step()
            losses[label].append(values)
    assert losses["eager"] == losses["compiled"], f"{context}: loss trajectories"
    compiled_step = runners["compiled"][1]
    assert isinstance(compiled_step, CompiledStep)
    if expect_compiled:
        assert compiled_step.fallback_reason is None, compiled_step.fallback_reason
        assert compiled_step.compiled_shapes
        # Lowering must actually be in effect on the source leg — a silent
        # interp fallback would make the parity assertions vacuous.
        assert not compiled_step.exec_fallbacks, compiled_step.exec_fallbacks
        assert all(mode == compiled_step.graph_exec
                   for mode in compiled_step.executors.values())
    assert_same_grads(eager_model, compiled_model, context)
    assert_same_state(eager_model, compiled_model, context)
    return compiled_step


# ----------------------------------------------------------------------
# Conv configuration grid
# ----------------------------------------------------------------------

class TestConvGrid:
    @pytest.mark.parametrize("dilation", [1, 2, 4])
    @pytest.mark.parametrize("stride", [1, 2])
    def test_dilation_stride_parity(self, dilation, stride):
        def make_model():
            rng = np.random.default_rng(7)
            return Sequential(
                CausalConv1d(3, 6, kernel_size=5, dilation=dilation,
                             stride=stride, rng=rng),
                ReLU(),
                CausalConv1d(6, 4, kernel_size=3, dilation=dilation, rng=rng),
                GlobalAvgPool1d(),
                Linear(4, 2, rng=rng),
            )
        run_parity(make_model, batches_of((4, 3, 32), (4, 2)), mse_loss,
                   context=f"d={dilation},s={stride}")

    @pytest.mark.parametrize("backend", ["einsum", "im2col"])
    def test_backend_captured_at_trace_time(self, backend):
        """The compiled program keeps its trace-time conv backend even if
        the process default changes afterwards."""
        def make_model():
            rng = np.random.default_rng(3)
            return Sequential(CausalConv1d(2, 3, kernel_size=3, rng=rng),
                              GlobalAvgPool1d(), Linear(3, 1, rng=rng))
        batches = batches_of((4, 2, 16), (4, 1))
        with repro.use_backend(backend):
            step = run_parity(make_model, batches[:1], mse_loss,
                              context=f"backend={backend}")
        # Replays after a backend switch reproduce the traced kernels: the
        # results must equal a run that never switched.
        model = make_model()
        reference = make_training_step(model, mse_loss, compile_step=False)
        other = "im2col" if backend == "einsum" else "einsum"
        with repro.use_backend(backend):
            expected = [reference(x, y) for x, y in batches]
        model2 = make_model()
        with repro.use_backend(backend):
            compiled = make_training_step(model2, mse_loss, compile_step=True)
            compiled(*batches[0])
        with repro.use_backend(other):
            replayed = [compiled(x, y) for x, y in batches[1:]]
        assert replayed == expected[1:]


# ----------------------------------------------------------------------
# Model grid: TCN seeds and RNN baselines
# ----------------------------------------------------------------------

class TestModelGrid:
    def test_temponet_with_regularizer(self):
        run_parity(lambda: temponet_seed(width_mult=0.125, seed=3),
                   batches_of((8, 4, 256), (8, 1)), mae_loss,
                   extra_loss_fn=lambda m: size_regularizer(m, 0.02),
                   context="temponet")

    def test_restcn_with_regularizer(self):
        run_parity(lambda: restcn_seed(width_mult=0.05, seed=1),
                   batches_of((4, 88, 48), (4, 88, 48)), polyphonic_nll,
                   extra_loss_fn=lambda m: size_regularizer(m, 0.02),
                   context="restcn")

    def test_heart_rate_gru(self):
        run_parity(lambda: HeartRateGRU(hidden=8,
                                        rng=np.random.default_rng(2)),
                   batches_of((4, 4, 32), (4, 1)), mae_loss, context="gru")

    def test_music_lstm(self):
        run_parity(lambda: MusicLSTM(hidden=12,
                                     rng=np.random.default_rng(2)),
                   batches_of((2, 88, 16), (2, 88, 16)), polyphonic_nll,
                   context="lstm")

    def test_float32_parity(self):
        set_default_dtype("float32")
        try:
            run_parity(lambda: temponet_seed(width_mult=0.125, seed=3),
                       batches_of((8, 4, 256), (8, 1)), mae_loss,
                       extra_loss_fn=lambda m: size_regularizer(m, 0.02),
                       context="temponet-f32")
        finally:
            set_default_dtype("float64")


# ----------------------------------------------------------------------
# Full PIT trainer: final masks must be bit-identical
# ----------------------------------------------------------------------

class TestPITTrainerParity:
    def _loaders(self, seed=0):
        rng = np.random.default_rng(seed)
        data = ArrayDataset(rng.standard_normal((24, 4, 256)),
                            rng.standard_normal((24, 1)))
        train = DataLoader(data, 8, shuffle=True,
                           rng=np.random.default_rng(seed + 1))
        val = DataLoader(data, 8)
        return train, val

    def test_three_phase_parity(self):
        results = {}
        for compile_step in (False, True):
            model = temponet_seed(width_mult=0.125, seed=3)
            train, val = self._loaders()
            trainer = PITTrainer(model, mae_loss, lam=0.5, gamma_lr=0.1,
                                 warmup_epochs=1, max_prune_epochs=2,
                                 prune_patience=2, finetune_epochs=1,
                                 finetune_patience=1,
                                 compile_step=compile_step)
            outcome = trainer.fit(train, val)
            results[compile_step] = (outcome, model)
        eager, compiled = results[False][0], results[True][0]
        assert compiled.dilations == eager.dilations
        assert compiled.best_val == eager.best_val
        assert compiled.history == eager.history
        assert compiled.effective_params == eager.effective_params
        assert (network_dilations(results[True][1])
                == network_dilations(results[False][1]))
        assert_same_state(results[False][1], results[True][1], "pit-final")

    def test_env_default_enables_compilation(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_STEP", "1")
        model = temponet_seed(width_mult=0.125, seed=3)
        trainer = PITTrainer(model, mae_loss, lam=0.5)
        assert trainer.compile_step is True
        monkeypatch.setenv("REPRO_COMPILE_STEP", "0")
        trainer = PITTrainer(model, mae_loss, lam=0.5)
        assert trainer.compile_step is False


# ----------------------------------------------------------------------
# Shape changes and capture-unsafe fallbacks
# ----------------------------------------------------------------------

class TestFallbacks:
    def test_short_final_batch_retraces(self):
        """A loader whose last batch is short triggers one extra trace; the
        results still match eager exactly."""
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.standard_normal((10, 2, 16)),
                            rng.standard_normal((10, 1)))
        loader = DataLoader(data, 4)  # batches of 4, 4, 2

        def make_model():
            mrng = np.random.default_rng(5)
            return Sequential(CausalConv1d(2, 4, kernel_size=3, rng=mrng),
                              GlobalAvgPool1d(), Linear(4, 1, rng=mrng))

        eager_model = make_model()
        compiled_model = copy.deepcopy(eager_model)
        eager = make_training_step(eager_model, mse_loss, compile_step=False)
        compiled = make_training_step(compiled_model, mse_loss,
                                      compile_step=True)
        for epoch in range(2):
            for x, y in loader:
                eager_model.zero_grad()
                compiled_model.zero_grad()
                assert compiled(x, y) == eager(x, y)
        assert compiled.fallback_reason is None
        assert sorted(key[0][0] for key in compiled.compiled_shapes) == [2, 4]
        assert_same_grads(eager_model, compiled_model, "short-batch")

    def test_channel_mask_falls_back_to_eager(self):
        """Channel-masked models are value-dependent: the capture poisons
        itself and the step runs eagerly — with identical results."""
        def make_model():
            rng = np.random.default_rng(4)
            return Sequential(
                PITChannelConv1d(2, 6, rf_max=4, rng=rng),
                GlobalAvgPool1d(), Linear(6, 1, rng=rng))
        step = run_parity(make_model, batches_of((4, 2, 16), (4, 1)),
                          mse_loss, context="channel-mask",
                          expect_compiled=False)
        assert step.fallback_reason is not None
        assert "ChannelMask" in step.fallback_reason
        assert not step.compiled_shapes

    def test_train_plain_compiled_matches_eager(self):
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.standard_normal((16, 2, 16)),
                            rng.standard_normal((16, 1)))

        def run(compile_step):
            mrng = np.random.default_rng(5)
            model = Sequential(CausalConv1d(2, 4, kernel_size=3, rng=mrng),
                               ReLU(), GlobalAvgPool1d(),
                               Linear(4, 1, rng=mrng))
            train = DataLoader(data, 4, shuffle=True,
                               rng=np.random.default_rng(1))
            val = DataLoader(data, 4)
            return train_plain(model, mse_loss, train, val, epochs=3,
                               patience=2, compile_step=compile_step)
        eager, compiled = run(False), run(True)
        assert compiled.best_val == eager.best_val
        assert compiled.history == eager.history
        assert compiled.epochs == eager.epochs


# ----------------------------------------------------------------------
# Perf smoke (env-gated): records BENCH_graph_executor.json
# ----------------------------------------------------------------------

PERF_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..",
                                "BENCH_graph_executor.json")
# TEMPONet at width 0.25, PPG input length, the PIT pruning-phase step
# (task loss + size regularizer).  float32 + the im2col GEMM backend is
# the fast configuration this PR targets; the assertions ride on the
# graph-optimized replay.
# Headline config first: it runs before sustained load heats the machine
# into thermal throttling, which would otherwise skew its clock envelope.
PERF_CONFIGS = [
    ("float32", "im2col", 4),
    ("float32", "im2col", 16),
    ("float64", "im2col", 16),
    ("float64", "einsum", 16),
]
PERF_ASSERT_CONFIG = ("float32", "im2col", 4)
PERF_TARGET_SPEEDUP = 1.3   # optimized replay on the headline config
PERF_FLOOR_SPEEDUP = 1.0    # optimized replay on every config
REPS = 25
WARMUP = 3


def _time_interleaved(steps, model, x, y):
    """Min-of-reps per step, measured round-robin.

    Interleaving is load-bearing: timing one variant to completion before
    the next lets CPU frequency drift (turbo decay, thermal throttling)
    masquerade as a speedup or regression of whichever ran later — the
    seed benchmark's apparent float64/einsum "regression" was exactly
    that.  Round-robin exposes every variant to the same clock envelope.
    """
    best = [float("inf")] * len(steps)
    for rep in range(WARMUP + REPS):
        for i, step in enumerate(steps):
            model.zero_grad()
            start = time.perf_counter()
            step(x, y)
            elapsed = time.perf_counter() - start
            if rep >= WARMUP:
                best[i] = min(best[i], elapsed)
    return best


@pytest.mark.perf
@pytest.mark.skipif(not os.environ.get("REPRO_RUN_PERF"),
                    reason="perf smoke test; set REPRO_RUN_PERF=1 to run")
def test_compiled_step_speedup(graph_exec_leg):
    if graph_exec_leg != "interp":
        pytest.skip("this bench measures the interpreted replay; the "
                    "codegen executor has its own (BENCH_codegen.json)")
    rows = []
    try:
        for dtype, backend, batch in PERF_CONFIGS:
            set_default_dtype(dtype)
            rng = np.random.default_rng(0)
            x = rng.standard_normal((batch, 4, 256))
            y = rng.standard_normal((batch, 1))
            model = temponet_seed(width_mult=0.25, seed=3)

            def step_fn(tx, ty, model=model):
                task = mae_loss(model(tx), ty)
                return task + size_regularizer(model, 0.02), task

            with repro.use_backend(backend):
                plain = CompiledStep(step_fn, optimize="none")
                optimized = CompiledStep(step_fn, optimize="default")
                plain(x, y)
                optimized(x, y)
                assert plain.fallback_reason is None
                assert optimized.fallback_reason is None
                # Steady-state replay must not allocate: warm every lazy
                # scratch buffer, snapshot, replay more, then re-read.
                optimized(x, y)
                optimized.alloc_stats
                for _ in range(3):
                    model.zero_grad()
                    optimized(x, y)
                alloc = optimized.alloc_stats
                assert alloc["steady_state_growth"] == 0, alloc
                eager_s, compiled_s, optimized_s = _time_interleaved(
                    [EagerStep(step_fn), plain, optimized], model, x, y)
            stats = next(iter(optimized.opt_stats.values()))
            rows.append({
                "dtype": dtype, "backend": backend, "batch": batch,
                "model": "temponet width=0.25 T=256",
                "eager_seconds": eager_s,
                "compiled_seconds": compiled_s,
                "optimized_seconds": optimized_s,
                "speedup": eager_s / compiled_s,
                "optimized_speedup": eager_s / optimized_s,
                "opt_stats": stats,
                "alloc_stats": alloc,
            })
            print(f"\n{dtype} {backend} b{batch}: eager {eager_s * 1e3:.2f} ms  "
                  f"compiled {compiled_s * 1e3:.2f} ms "
                  f"({eager_s / compiled_s:.2f}x)  "
                  f"optimized {optimized_s * 1e3:.2f} ms "
                  f"({eager_s / optimized_s:.2f}x)")
    finally:
        set_default_dtype("float64")

    payload = {"reps": REPS, "timing": "interleaved min-of-reps",
               "step": "PIT pruning step (task + size reg)", "rows": rows}
    with open(os.path.abspath(PERF_RESULT_PATH), "w") as handle:
        json.dump(payload, handle, indent=2)

    for row in rows:
        assert row["optimized_speedup"] >= PERF_FLOOR_SPEEDUP, (
            f"optimized replay slower than eager on "
            f"{row['dtype']}/{row['backend']}/b{row['batch']}: "
            f"{row['optimized_speedup']:.2f}x")
    headline = next(r for r in rows
                    if (r["dtype"], r["backend"], r["batch"]) == PERF_ASSERT_CONFIG)
    assert headline["optimized_speedup"] >= PERF_TARGET_SPEEDUP, (
        f"optimized step speedup regressed: "
        f"{headline['optimized_speedup']:.2f}x < {PERF_TARGET_SPEEDUP}x "
        f"({headline['eager_seconds'] * 1e3:.2f} ms vs "
        f"{headline['optimized_seconds'] * 1e3:.2f} ms)")
