"""Tests for sliding windows and time-series augmentation."""

import numpy as np
import pytest

from repro.data.windowing import (
    Augmenter,
    channel_dropout,
    jitter,
    scale_channels,
    sliding_windows,
    time_mask_augment,
    window_count,
)

RNG = np.random.default_rng(99)


class TestWindowCount:
    @pytest.mark.parametrize("length,window,shift,expected", [
        (10, 4, 2, 4),
        (10, 10, 1, 1),
        (9, 10, 1, 0),
        (256, 256, 64, 1),
        (960, 256, 64, 12),  # the PPG-Dalia 30s case
    ])
    def test_values(self, length, window, shift, expected):
        assert window_count(length, window, shift) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            window_count(10, 0, 1)
        with pytest.raises(ValueError):
            window_count(10, 4, 0)


class TestSlidingWindows:
    def test_shapes(self):
        out = sliding_windows(RNG.standard_normal((3, 20)), window=8, shift=4)
        assert out.shape == (4, 3, 8)

    def test_content(self):
        signal = np.arange(10, dtype=float).reshape(1, 10)
        out = sliding_windows(signal, window=4, shift=3)
        assert out[0, 0].tolist() == [0, 1, 2, 3]
        assert out[1, 0].tolist() == [3, 4, 5, 6]
        assert out[2, 0].tolist() == [6, 7, 8, 9]

    def test_too_short_returns_empty(self):
        out = sliding_windows(np.zeros((2, 5)), window=8, shift=1)
        assert out.shape == (0, 2, 8)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros(10), 4, 2)


class TestTransforms:
    def test_jitter_changes_values_bounded(self):
        x = np.zeros((2, 100))
        out = jitter(x, 0.1, np.random.default_rng(0))
        assert not np.allclose(out, 0.0)
        assert np.abs(out).max() < 1.0

    def test_jitter_zero_sigma_near_identity(self):
        x = RNG.standard_normal((2, 10))
        out = jitter(x, 0.0, np.random.default_rng(0))
        assert np.allclose(out, x)

    def test_scale_channels_per_channel_gain(self):
        x = np.ones((3, 50))
        out = scale_channels(x, 0.2, np.random.default_rng(0))
        # Constant within a channel, different across channels.
        assert np.allclose(out.std(axis=1), 0.0)
        assert out[:, 0].std() > 0

    def test_scale_rejects_1d(self):
        with pytest.raises(ValueError):
            scale_channels(np.zeros(5), 0.1, np.random.default_rng(0))

    def test_time_mask_zeroes_span(self):
        x = np.ones((2, 50))
        out = time_mask_augment(x, 0.5, np.random.default_rng(3))
        zero_cols = np.all(out == 0, axis=0)
        if zero_cols.any():
            idx = np.nonzero(zero_cols)[0]
            assert np.all(np.diff(idx) == 1)  # contiguous
            assert len(idx) <= 25

    def test_time_mask_fraction_validation(self):
        with pytest.raises(ValueError):
            time_mask_augment(np.ones((1, 4)), 1.5, np.random.default_rng(0))

    def test_time_mask_does_not_mutate_input(self):
        x = np.ones((1, 20))
        time_mask_augment(x, 0.5, np.random.default_rng(0))
        assert np.allclose(x, 1.0)

    def test_channel_dropout_keeps_one(self):
        x = np.ones((4, 10))
        out = channel_dropout(x, 1.0, np.random.default_rng(0))
        alive = np.any(out != 0, axis=1)
        assert alive.sum() == 1

    def test_channel_dropout_probability(self):
        rng = np.random.default_rng(0)
        dropped = 0
        for _ in range(200):
            out = channel_dropout(np.ones((5, 4)), 0.3, rng)
            dropped += (out.sum(axis=1) == 0).sum()
        assert dropped / (200 * 5) == pytest.approx(0.3, abs=0.06)


class TestAugmenter:
    def test_disabled_is_identity(self):
        aug = Augmenter()
        x = RNG.standard_normal((3, 20))
        assert np.allclose(aug(x), x)

    def test_deterministic_given_rng(self):
        x = RNG.standard_normal((3, 20))
        a = Augmenter(jitter_sigma=0.1, rng=np.random.default_rng(5))(x)
        b = Augmenter(jitter_sigma=0.1, rng=np.random.default_rng(5))(x)
        assert np.allclose(a, b)

    def test_batch_applies_independently(self):
        aug = Augmenter(jitter_sigma=0.1, rng=np.random.default_rng(0))
        xs = np.zeros((4, 2, 10))
        out = aug.batch(xs)
        assert out.shape == xs.shape
        # Different noise per window.
        assert not np.allclose(out[0], out[1])

    def test_composition_order_runs_all(self):
        aug = Augmenter(jitter_sigma=0.05, scale_sigma=0.1,
                        time_mask_fraction=0.2, channel_drop_p=0.2,
                        rng=np.random.default_rng(0))
        out = aug(np.ones((4, 30)))
        assert out.shape == (4, 30)
        assert not np.allclose(out, 1.0)
