"""Property-based tests (hypothesis) for PIT's core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.core import (
    PITConv1d,
    effective_dilation,
    export_conv,
    gamma_size_coefficients,
    kept_lags,
    mask_eq4,
    mask_from_binary_gamma,
    mask_from_dilation,
    num_gamma,
)

settings.register_profile("repro-core", max_examples=30, deadline=None)
settings.load_profile("repro-core")

rf_values = st.sampled_from([3, 4, 5, 6, 8, 9, 12, 17, 24, 33])


@st.composite
def gamma_vectors(draw):
    rf = draw(rf_values)
    length = num_gamma(rf)
    bits = draw(st.lists(st.sampled_from([0.0, 1.0]),
                         min_size=length - 1, max_size=length - 1))
    return rf, np.array([1.0] + bits)


class TestMaskInvariants:
    @given(gamma_vectors())
    def test_mask_is_regular_dilation(self, case):
        """Any binary γ collapses to a regular power-of-two dilation mask."""
        rf, gamma = case
        mask = mask_from_binary_gamma(gamma, rf)
        d = effective_dilation(gamma, rf)
        assert d & (d - 1) == 0  # power of two
        assert np.allclose(mask, mask_from_dilation(rf, d))

    @given(gamma_vectors())
    def test_lag_zero_always_alive(self, case):
        rf, gamma = case
        assert mask_from_binary_gamma(gamma, rf)[0] == 1.0

    @given(gamma_vectors())
    def test_alive_lags_are_multiples_of_dilation(self, case):
        rf, gamma = case
        mask = mask_from_binary_gamma(gamma, rf)
        d = effective_dilation(gamma, rf)
        for lag in np.nonzero(mask)[0]:
            assert lag % d == 0

    @given(gamma_vectors())
    def test_eq4_equals_constructive(self, case):
        rf, gamma = case
        constructive = mask_from_binary_gamma(gamma, rf)
        tensor_form = mask_eq4(Tensor(gamma), rf).data
        assert np.allclose(constructive, tensor_form)

    @given(gamma_vectors())
    def test_pruning_a_gamma_never_grows_the_mask(self, case):
        """Zeroing any γ_i is monotone: the kept-tap count cannot increase."""
        rf, gamma = case
        base = mask_from_binary_gamma(gamma, rf).sum()
        for i in range(1, len(gamma)):
            if gamma[i] == 1.0:
                pruned = gamma.copy()
                pruned[i] = 0.0
                assert mask_from_binary_gamma(pruned, rf).sum() <= base

    @given(rf_values)
    def test_dilation_doubles_roughly_halve_taps(self, rf):
        length = num_gamma(rf)
        taps = [len(kept_lags(rf, 2 ** i)) for i in range(length)]
        for a, b in zip(taps, taps[1:]):
            assert b == (a + 1) // 2 or b == a // 2 + 1


class TestRegularizerInvariants:
    @given(rf_values)
    def test_coefficients_positive_and_doubling(self, rf):
        coeffs = gamma_size_coefficients(rf)
        assert np.all(coeffs >= 1)
        # Coefficients grow geometrically (round() may perturb by ±1).
        for a, b in zip(coeffs, coeffs[1:]):
            assert b >= a

    @given(rf_values)
    def test_power_of_two_accounting(self, rf):
        if (rf - 1) & (rf - 2) == 0:  # rf-1 is a power of two
            assert gamma_size_coefficients(rf).sum() + 2 == rf


class TestExportInvariants:
    @given(st.sampled_from([5, 6, 9, 12, 17]),
           st.integers(1, 3), st.integers(1, 3), st.integers(0, 4),
           st.integers(0, 1000))
    def test_export_forward_equivalence(self, rf, c_in, c_out, d_exp, seed):
        """Masked supernet forward == exported compact conv forward."""
        length = num_gamma(rf)
        d = 2 ** min(d_exp, length - 1)
        layer = PITConv1d(c_in, c_out, rf_max=rf, rng=np.random.default_rng(seed))
        layer.set_dilation(d)
        conv = export_conv(layer)
        x = Tensor(np.random.default_rng(seed + 1).standard_normal((1, c_in, rf + 4)))
        assert np.allclose(layer(x).data, conv(x).data, atol=1e-12)

    @given(st.sampled_from([5, 9, 17]), st.integers(0, 3))
    def test_export_param_accounting(self, rf, d_exp):
        length = num_gamma(rf)
        d = 2 ** min(d_exp, length - 1)
        layer = PITConv1d(2, 3, rf_max=rf, rng=np.random.default_rng(0))
        layer.set_dilation(d)
        conv = export_conv(layer)
        assert conv.count_parameters() == layer.effective_params()
        assert conv.receptive_field <= rf
