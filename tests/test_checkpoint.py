"""Bit-exact mid-run checkpointing (:mod:`repro.core.checkpoint`).

The contract under test: a training run killed at any epoch boundary —
by a crash, a timeout or preemption — and resumed from its checkpoint is
**bit-identical** to the uninterrupted run: same losses, same history,
same parameters, same discovered dilations.  That must hold across
eager / compiled-step / whole-loop execution, both graph executors, and
the stacked trainer (per-slice checkpoint files).  Corrupt checkpoints
are quarantined and degrade to a fresh start, never a crash or a
silently-wrong resume.
"""

import os

import numpy as np
import pytest

from repro.autograd.graph import CompileConfig
from repro.core import PITConv1d, PITTrainer, train_plain
from repro.core.checkpoint import (
    TrainerCheckpoint,
    checkpoint_dir_default,
    checkpoint_every_default,
    checkpoint_file,
    decode_rng,
    encode_rng,
    key_tag,
    restore_rng,
)
from repro.core.stacked import StackedPITTrainer
from repro.data import ArrayDataset, DataLoader
from repro.nn import Dropout, GlobalAvgPool1d, Linear, Module, ReLU, mse_loss
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_STATE, raising=False)
    faults.reset()
    yield
    faults.reset()


class Tiny(Module):
    """Small but representative: a searchable conv, dropout (a live RNG
    stream that must survive the kill), and a dense head."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c = PITConv1d(1, 2, rf_max=9, rng=rng)
        self.r = ReLU()
        self.d = Dropout(0.2, rng=np.random.default_rng(7))
        self.p = GlobalAvgPool1d()
        self.f = Linear(2, 2, rng=rng)

    def forward(self, x):
        return self.f(self.p(self.d(self.r(self.c(x)))))


def _loaders():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((24, 1, 16))
    y = np.eye(2)[(rng.random(24) > 0.5).astype(np.int64)]
    train = DataLoader(ArrayDataset(x[:16], y[:16]), 8, shuffle=True,
                       rng=np.random.default_rng(11))
    val = DataLoader(ArrayDataset(x[16:], y[16:]), 8)
    return train, val


SCHED = dict(warmup_epochs=1, prune_patience=2, max_prune_epochs=2,
             finetune_epochs=1, finetune_patience=2)

TIERS = {
    "eager": CompileConfig(),
    "step-interp": CompileConfig(compile_step=True, graph_exec="interp"),
    "step-source": CompileConfig(compile_step=True, graph_exec="source"),
    "loop-interp": CompileConfig(loop_capture=True, graph_exec="interp"),
    "loop-source": CompileConfig(loop_capture=True, graph_exec="source"),
}


def _fit(ckpt_dir=None, crash_at=None, cfg=None, resume=True, every=None):
    """One PITTrainer run; None when an injected crash killed it."""
    faults.reset()
    if crash_at is not None:
        os.environ[faults.ENV_FAULTS] = f"crash@epoch={crash_at}"
    else:
        os.environ.pop(faults.ENV_FAULTS, None)
    train, val = _loaders()
    trainer = PITTrainer(Tiny(), mse_loss, lam=0.5, lr=0.01,
                         compile_config=cfg,
                         checkpoint_dir=ckpt_dir, checkpoint_every=every,
                         checkpoint_resume=resume, **SCHED)
    try:
        return trainer.fit(train, val), trainer.model
    except faults.InjectedWorkerCrash:
        return None
    finally:
        os.environ.pop(faults.ENV_FAULTS, None)


def _fingerprint(result, model):
    return (result.best_val, result.dilations, result.effective_params,
            {k: tuple(v) for k, v in result.history.items()},
            {name: p.data.copy() for name, p in model.named_parameters()})


def _assert_same(a, b):
    assert a[0] == b[0]            # best val, bit-identical
    assert a[1] == b[1]            # dilations
    assert a[2] == b[2]            # effective params
    assert a[3] == b[3]            # full per-phase history
    for name in a[4]:
        assert np.array_equal(a[4][name], b[4][name]), name


# ----------------------------------------------------------------------
# Kill-and-resume parity, across every execution tier
# ----------------------------------------------------------------------

class TestKillResumeParity:
    @pytest.mark.parametrize("tier", list(TIERS))
    def test_crash_then_resume_is_bit_identical(self, tier, tmp_path):
        cfg = TIERS[tier]
        ref = _fingerprint(*_fit(cfg=cfg))
        assert _fit(str(tmp_path), crash_at=2, cfg=cfg) is None  # killed
        out = _fit(str(tmp_path), cfg=cfg)  # resumed
        assert out is not None
        result, model = out
        assert result.resumed_epochs == 2
        _assert_same(_fingerprint(result, model), ref)

    def test_resume_at_every_epoch_boundary(self, tmp_path):
        ref_result, ref_model = _fit()
        ref = _fingerprint(ref_result, ref_model)
        total = (ref_result.warmup_epochs + ref_result.prune_epochs
                 + ref_result.finetune_epochs)
        assert total >= 3  # the loop below must cross every phase
        for k in range(1, total):
            ckpt = str(tmp_path / f"k{k}")
            assert _fit(ckpt, crash_at=k) is None
            result, model = _fit(ckpt)
            assert result.resumed_epochs == k
            _assert_same(_fingerprint(result, model), ref)

    def test_train_plain_resume(self, tmp_path):
        def run(**kw):
            faults.reset()
            train, val = _loaders()
            model = Tiny()
            result = train_plain(model, mse_loss, train, val, epochs=4,
                                 lr=0.01, patience=4, **kw)
            return result, model

        ref_result, ref_model = run()
        os.environ[faults.ENV_FAULTS] = "crash@epoch=2"
        try:
            with pytest.raises(faults.InjectedWorkerCrash):
                run(checkpoint_dir=str(tmp_path))
        finally:
            os.environ.pop(faults.ENV_FAULTS, None)
        result, model = run(checkpoint_dir=str(tmp_path))
        assert result.resumed_epochs == 2
        assert result.best_val == ref_result.best_val
        assert result.history == ref_result.history
        for (name, p), (_, q) in zip(model.named_parameters(),
                                     ref_model.named_parameters()):
            assert np.array_equal(p.data, q.data), name

    def test_resume_off_starts_fresh(self, tmp_path):
        assert _fit(str(tmp_path), crash_at=2) is None
        result, model = _fit(str(tmp_path), resume=False)
        assert result.resumed_epochs == 0
        _assert_same(_fingerprint(result, model), _fingerprint(*_fit()))

    def test_checkpoint_every_skips_boundaries(self, tmp_path):
        path = checkpoint_file(tmp_path, "pit")
        assert _fit(str(tmp_path), crash_at=1, every=2) is None
        assert not path.exists()  # epoch 1 is not due with every=2
        result, model = _fit(str(tmp_path), every=2)
        assert result.resumed_epochs == 0  # nothing to resume from
        _assert_same(_fingerprint(result, model), _fingerprint(*_fit()))


# ----------------------------------------------------------------------
# Stacked trainer: per-slice checkpoint files
# ----------------------------------------------------------------------

LAMS = [0.0, 2.0]


def _fit_stacked(ckpt_dir=None, crash_at=None, cfg=None):
    faults.reset()
    if crash_at is not None:
        os.environ[faults.ENV_FAULTS] = f"crash@epoch={crash_at}"
    else:
        os.environ.pop(faults.ENV_FAULTS, None)
    train, val = _loaders()
    trainer = StackedPITTrainer(Tiny(), mse_loss, LAMS, lr=0.01,
                                compile_config=cfg,
                                checkpoint_dir=ckpt_dir, **SCHED)
    try:
        return trainer.fit(train, val), trainer
    except faults.InjectedWorkerCrash:
        return None
    finally:
        os.environ.pop(faults.ENV_FAULTS, None)


def _stacked_fingerprint(results, trainer):
    per_slice = [(r.best_val, r.dilations, r.effective_params,
                  {k: tuple(v) for k, v in r.history.items()})
                 for r in results]
    params = {name: p.data.copy()
              for name, p in trainer.stacked.net.named_parameters()}
    return per_slice, params


class TestStackedResume:
    @pytest.mark.parametrize("tier", ["eager", "loop-source"])
    def test_stacked_crash_then_resume_is_bit_identical(self, tier, tmp_path):
        cfg = TIERS[tier] if tier != "eager" else None
        ref = _stacked_fingerprint(*_fit_stacked(cfg=cfg))
        assert _fit_stacked(str(tmp_path), crash_at=2, cfg=cfg) is None
        out = _fit_stacked(str(tmp_path), cfg=cfg)
        assert out is not None
        results, trainer = out
        assert all(r.resumed_epochs == 2 for r in results)
        slices, params = _stacked_fingerprint(results, trainer)
        assert slices == ref[0]
        for name in ref[1]:
            assert np.array_equal(params[name], ref[1][name]), name

    def test_one_slice_file_per_grid_point(self, tmp_path):
        assert _fit_stacked(str(tmp_path), crash_at=1) is None
        files = sorted(f.name for f in tmp_path.iterdir())
        assert files == ["stack0.ckpt.npz", "stack1.ckpt.npz"]

    def test_torn_slice_set_degrades_to_fresh_start(self, tmp_path):
        ref = _stacked_fingerprint(*_fit_stacked())
        assert _fit_stacked(str(tmp_path), crash_at=2) is None
        (tmp_path / "stack1.ckpt.npz").unlink()  # half the set is gone
        results, trainer = _fit_stacked(str(tmp_path))
        assert all(r.resumed_epochs == 0 for r in results)
        assert _stacked_fingerprint(results, trainer)[0] == ref[0]

    def test_tag_count_must_match_width(self):
        train, val = _loaders()
        with pytest.raises(ValueError, match="slices"):
            StackedPITTrainer(Tiny(), mse_loss, LAMS, checkpoint_dir="/tmp",
                              checkpoint_tags=["only-one"], **SCHED)


# ----------------------------------------------------------------------
# Corruption, quarantine, format hygiene
# ----------------------------------------------------------------------

class TestCorruption:
    def test_injected_corruption_quarantines_and_restarts(self, tmp_path):
        """ckpt_corrupt truncates the archive right after the write; the
        resume warns, quarantines, and still converges to the reference."""
        ref = _fingerprint(*_fit())
        faults.reset()
        # Corrupt the epoch-1 save, then die at that same boundary, so the
        # torn archive is the one the resume finds on disk.
        os.environ[faults.ENV_FAULTS] = "ckpt_corrupt,crash@epoch=1"
        try:
            with pytest.raises(faults.InjectedWorkerCrash):
                train, val = _loaders()
                PITTrainer(Tiny(), mse_loss, lam=0.5, lr=0.01,
                           checkpoint_dir=str(tmp_path),
                           **SCHED).fit(train, val)
        finally:
            os.environ.pop(faults.ENV_FAULTS, None)
        with pytest.warns(UserWarning, match="quarantined"):
            result, model = _fit(str(tmp_path))
        assert result.resumed_epochs == 0  # fresh start, not a bad resume
        assert os.path.exists(checkpoint_file(tmp_path, "pit").with_suffix(
            ".npz.corrupt"))
        _assert_same(_fingerprint(result, model), ref)

    def test_checksum_mismatch_rejected(self, tmp_path):
        ckpt = TrainerCheckpoint(tmp_path / "t.ckpt.npz")
        ckpt.save({"model/w": np.arange(4.0)}, {"trainer": "pit"})
        arrays, meta = __import__("repro.nn.serialization",
                                  fromlist=["load_state"]).load_state(
                                      ckpt.path)
        arrays["model/w"][0] += 1.0  # tampered bytes, stale checksum
        from repro.nn.serialization import save_state
        save_state(arrays, ckpt.path, metadata=meta)
        with pytest.warns(UserWarning, match="checksum mismatch"):
            assert ckpt.load() is None
        assert not ckpt.path.exists()  # quarantined

    def test_garbage_archive_rejected(self, tmp_path):
        ckpt = TrainerCheckpoint(tmp_path / "t.ckpt.npz")
        ckpt.path.write_bytes(b"not a zip archive at all")
        with pytest.warns(UserWarning, match="corrupt"):
            assert ckpt.load() is None
        assert (tmp_path / "t.ckpt.npz.corrupt").exists()

    def test_unknown_format_rejected(self, tmp_path):
        ckpt = TrainerCheckpoint(tmp_path / "t.ckpt.npz")
        from repro.nn.serialization import save_state
        save_state({"model/w": np.zeros(1)}, ckpt.path,
                   metadata={"format": 99, "checksum": 0})
        with pytest.warns(UserWarning, match="unsupported format"):
            assert ckpt.load() is None

    def test_missing_file_is_silent_fresh_start(self, tmp_path):
        assert TrainerCheckpoint(tmp_path / "absent.ckpt.npz").load() is None

    def test_save_is_atomic_over_previous(self, tmp_path):
        ckpt = TrainerCheckpoint(tmp_path / "t.ckpt.npz")
        ckpt.save({"model/w": np.arange(4.0)}, {"trainer": "pit", "n": 1})
        ckpt.save({"model/w": np.arange(4.0) * 2}, {"trainer": "pit", "n": 2})
        state = ckpt.load()
        assert state.meta["n"] == 2
        assert np.array_equal(state.arrays["model/w"], np.arange(4.0) * 2)
        assert [f.name for f in tmp_path.iterdir()] == ["t.ckpt.npz"]


# ----------------------------------------------------------------------
# Helpers: tags, paths, RNG codec, env defaults
# ----------------------------------------------------------------------

class TestHelpers:
    def test_key_tag_stable_and_safe(self):
        key = 'tag=x|backend=einsum|lam=0.5|warmup=2|trainer={"a": 1}'
        tag = key_tag(key)
        assert tag == key_tag(key)  # deterministic across calls
        assert len(tag) == 16 and tag.isalnum()
        assert key_tag("other") != tag

    def test_checkpoint_file_sanitizes(self, tmp_path):
        path = checkpoint_file(tmp_path, "a/b|c d")
        assert path.name == "a_b_c_d.ckpt.npz"
        assert path.parent == tmp_path

    @pytest.mark.parametrize("bitgen", [np.random.PCG64, np.random.MT19937,
                                        np.random.Philox, np.random.SFC64])
    def test_rng_codec_round_trip(self, bitgen):
        gen = np.random.Generator(bitgen(42))
        gen.standard_normal(17)  # advance off the seed point
        import json
        snapshot = json.loads(json.dumps(encode_rng(gen)))  # survives JSON
        expected = gen.standard_normal(8)
        fresh = np.random.Generator(bitgen(0))
        restore_rng(fresh, snapshot)
        assert np.array_equal(fresh.standard_normal(8), expected)

    def test_decode_rejects_nothing_extra(self):
        gen = np.random.default_rng(5)
        assert decode_rng(encode_rng(gen)) == gen.bit_generator.state

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
        monkeypatch.delenv("REPRO_CKPT_EVERY", raising=False)
        assert checkpoint_dir_default() is None
        assert checkpoint_every_default() == 1
        monkeypatch.setenv("REPRO_CKPT_DIR", "/tmp/ck")
        monkeypatch.setenv("REPRO_CKPT_EVERY", "3")
        assert checkpoint_dir_default() == "/tmp/ck"
        assert checkpoint_every_default() == 3
        monkeypatch.setenv("REPRO_CKPT_EVERY", "garbage")
        assert checkpoint_every_default() == 1

    def test_create_none_without_directory(self):
        assert TrainerCheckpoint.create(None, "t") is None
        assert TrainerCheckpoint.create("", "t") is None

    def test_due_cadence(self):
        ckpt = TrainerCheckpoint("/tmp/x.npz", every=3)
        assert [e for e in range(1, 10) if ckpt.due(e)] == [3, 6, 9]
