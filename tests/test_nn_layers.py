"""Tests for the nn layers: Linear, CausalConv1d, BatchNorm1d, etc."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AvgPool1d,
    BatchNorm1d,
    CausalConv1d,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    Identity,
    Linear,
    MaxPool1d,
    ReLU,
    Sigmoid,
    Tanh,
)

RNG = np.random.default_rng(21)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(RNG.standard_normal((7, 5)))).shape == (7, 3)

    def test_matches_manual_affine(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        x = RNG.standard_normal((3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        layer(Tensor(RNG.standard_normal((3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_deterministic_init_per_seed(self):
        a = Linear(4, 2, rng=np.random.default_rng(5))
        b = Linear(4, 2, rng=np.random.default_rng(5))
        assert np.allclose(a.weight.data, b.weight.data)


class TestCausalConv1d:
    def test_output_shape_preserved(self):
        conv = CausalConv1d(3, 6, kernel_size=5, dilation=2, rng=np.random.default_rng(0))
        assert conv(Tensor(RNG.standard_normal((2, 3, 11)))).shape == (2, 6, 11)

    def test_receptive_field(self):
        conv = CausalConv1d(1, 1, kernel_size=5, dilation=4)
        assert conv.receptive_field == 17

    def test_strided_output_length(self):
        conv = CausalConv1d(2, 2, kernel_size=3, stride=2, rng=np.random.default_rng(0))
        assert conv(Tensor(RNG.standard_normal((1, 2, 9)))).shape[-1] == 5

    def test_causality(self):
        conv = CausalConv1d(2, 2, kernel_size=3, dilation=2, rng=np.random.default_rng(0))
        x = RNG.standard_normal((1, 2, 12))
        base = conv(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, -1] += 5.0
        out = conv(Tensor(x2)).data
        assert np.allclose(out[:, :, :-1], base[:, :, :-1])

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            CausalConv1d(2, 2, kernel_size=0)

    def test_records_trace_shapes(self):
        conv = CausalConv1d(2, 2, kernel_size=3, rng=np.random.default_rng(0))
        conv(Tensor(RNG.standard_normal((1, 2, 10))))
        assert conv.last_t_in == 10
        assert conv.last_t_out == 10


class TestBatchNorm1d:
    def test_normalizes_training_batch_3d(self):
        bn = BatchNorm1d(4)
        x = Tensor(RNG.standard_normal((8, 4, 16)) * 3.0 + 5.0)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2)), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=(0, 2)), 1.0, atol=1e-3)

    def test_normalizes_training_batch_2d(self):
        bn = BatchNorm1d(4)
        out = bn(Tensor(RNG.standard_normal((64, 4)) * 2.0 - 1.0))
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-7)

    def test_running_stats_updated(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 8)) * 10.0)
        bn(x)
        assert np.all(bn.running_mean > 0.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)  # running stats = last batch
        x = Tensor(RNG.standard_normal((16, 2, 8)) * 2.0 + 3.0)
        train_out = bn(x)
        bn.eval()
        eval_out = bn(x)
        # With momentum=1 the running stats equal the batch stats, so the
        # outputs agree (up to the biased/unbiased variance convention).
        assert np.allclose(train_out.data, eval_out.data, atol=1e-6)

    def test_affine_parameters_trainable(self):
        bn = BatchNorm1d(3)
        bn(Tensor(RNG.standard_normal((4, 3, 5)))).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4, 5))))

    def test_gradient_flows_to_input(self):
        bn = BatchNorm1d(3)
        x = Tensor(RNG.standard_normal((4, 3, 5)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None


class TestActivationsAndUtility:
    def test_relu(self):
        assert np.allclose(ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_sigmoid_range(self):
        out = Sigmoid()(Tensor(RNG.standard_normal(100) * 10))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_tanh(self):
        assert np.allclose(Tanh()(Tensor([0.0])).data, [0.0])

    def test_identity(self):
        x = Tensor([1.0])
        assert Identity()(x) is x

    def test_flatten(self):
        assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((10, 10)))
        assert (drop(x).data == 0).any()
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)

    def test_avg_pool_module(self):
        out = AvgPool1d(2)(Tensor(np.arange(8, dtype=float).reshape(1, 1, 8)))
        assert out.shape == (1, 1, 4)

    def test_max_pool_module(self):
        out = MaxPool1d(2)(Tensor(np.arange(8, dtype=float).reshape(1, 1, 8)))
        assert out.data.reshape(-1).tolist() == [1, 3, 5, 7]

    def test_global_avg_pool_module(self):
        out = GlobalAvgPool1d()(Tensor(np.ones((2, 3, 7))))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, 1.0)
