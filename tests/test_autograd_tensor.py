"""Tests for the core autograd engine: ops, broadcasting, backward."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    arange,
    check_gradients,
    concatenate,
    full,
    is_grad_enabled,
    maximum,
    minimum,
    no_grad,
    ones,
    rand,
    randn,
    stack,
    tensor,
    where,
    zeros,
)

RNG = np.random.default_rng(1234)


def make(shape, requires_grad=True):
    return Tensor(RNG.standard_normal(shape), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Construction and introspection
# ----------------------------------------------------------------------

class TestConstruction:
    def test_from_list(self):
        from repro.autograd import get_default_dtype
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == get_default_dtype()

    def test_from_int_array_upcasts(self):
        from repro.autograd import get_default_dtype
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.dtype == get_default_dtype()

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_item_rejects_multi_element(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_len_and_size(self):
        t = zeros(4, 5)
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((2, 3)).shape == (2, 3)
        assert np.all(ones(4).data == 1)
        assert full((2,), 7.0).data.tolist() == [7.0, 7.0]
        assert arange(5).shape == (5,)
        assert randn(3, rng=np.random.default_rng(0)).shape == (3,)
        assert rand(3, rng=np.random.default_rng(0)).shape == (3,)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_detach_severs_graph(self):
        a = make((3,))
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_copy_is_deep(self):
        a = Tensor([1.0, 2.0])
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0


# ----------------------------------------------------------------------
# Backward engine mechanics
# ----------------------------------------------------------------------

class TestBackwardEngine:
    def test_scalar_backward_default_grad(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        assert a.grad == pytest.approx(4.0)

    def test_backward_requires_scalar_without_grad(self):
        a = make((3,))
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = make((3,))
        out = a * 3
        out.backward(np.ones(3))
        assert np.allclose(a.grad, 3.0)

    def test_backward_grad_shape_mismatch(self):
        a = make((3,))
        out = a * 3
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_across_uses(self):
        a = Tensor(3.0, requires_grad=True)
        out = a * a + a  # d/da = 2a + 1 = 7
        out.backward()
        assert a.grad == pytest.approx(7.0)

    def test_diamond_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * 3
        c = a * 5
        (b + c).backward()
        assert a.grad == pytest.approx(8.0)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(1.0, requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        assert a.grad == pytest.approx(1.0)

    def test_zero_grad(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_blocks_recording(self):
        a = Tensor(1.0, requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


# ----------------------------------------------------------------------
# Elementwise arithmetic + gradcheck
# ----------------------------------------------------------------------

class TestArithmetic:
    def test_add_values(self):
        assert np.allclose((Tensor([1.0, 2]) + Tensor([3.0, 4])).data, [4, 6])

    def test_radd_scalar(self):
        assert np.allclose((1.0 + Tensor([1.0])).data, [2.0])

    def test_sub_rsub(self):
        assert (5.0 - Tensor(2.0)).item() == 3.0
        assert (Tensor(5.0) - 2.0).item() == 3.0

    def test_mul_rmul(self):
        assert (3.0 * Tensor(2.0)).item() == 6.0

    def test_div_rdiv(self):
        assert (Tensor(6.0) / 2.0).item() == 3.0
        assert (6.0 / Tensor(2.0)).item() == 3.0

    def test_neg(self):
        assert (-Tensor(2.0)).item() == -2.0

    def test_pow_scalar_only(self):
        with pytest.raises(TypeError):
            Tensor(2.0) ** Tensor(2.0)

    @pytest.mark.parametrize("op", [
        lambda a, b: a + b,
        lambda a, b: a - b,
        lambda a, b: a * b,
        lambda a, b: a / b,
    ])
    def test_binary_gradcheck(self, op):
        a = Tensor(RNG.standard_normal((3, 4)) + 3.0, requires_grad=True)
        b = Tensor(RNG.standard_normal((3, 4)) + 3.0, requires_grad=True)
        check_gradients(op, [a, b])

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((3, 4), (4,)),
        ((3, 4), (1, 4)),
        ((3, 1), (1, 4)),
        ((2, 3, 4), (3, 4)),
        ((2, 3, 4), (1,)),
        ((5,), ()),
    ])
    def test_broadcast_gradcheck(self, shape_a, shape_b):
        a = Tensor(RNG.standard_normal(shape_a) + 2.0, requires_grad=True)
        b = Tensor(RNG.standard_normal(shape_b) + 2.0, requires_grad=True)
        check_gradients(lambda x, y: x * y + x / y, [a, b])

    @pytest.mark.parametrize("func", [
        lambda a: a.exp(),
        lambda a: (a + 5.0).log(),
        lambda a: (a + 5.0).sqrt(),
        lambda a: a.sigmoid(),
        lambda a: a.tanh(),
        lambda a: a ** 3,
        lambda a: a.relu(),
    ])
    def test_unary_gradcheck(self, func):
        a = Tensor(RNG.standard_normal((4, 3)) * 0.8 + 0.1, requires_grad=True)
        check_gradients(func, [a])

    def test_abs_gradient_sign(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_clip_gradient_mask(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        assert np.allclose(Tensor([-2.0, 0.5, 2.0]).clip(-1, 1).data, [-1, 0.5, 1])

    def test_comparisons_are_detached(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        mask = a > 1.5
        assert not mask.requires_grad
        assert mask.data.tolist() == [False, True]
        assert (a < 1.5).data.tolist() == [True, False]
        assert (a >= 2.0).data.tolist() == [False, True]
        assert (a <= 1.0).data.tolist() == [True, False]


# ----------------------------------------------------------------------
# Matmul
# ----------------------------------------------------------------------

class TestMatmul:
    def test_2d_values(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.arange(12, dtype=float).reshape(3, 4)
        out = Tensor(a) @ Tensor(b)
        assert np.allclose(out.data, a @ b)

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((2, 3), (3, 4)),
        ((3,), (3, 4)),
        ((2, 3), (3,)),
        ((3,), (3,)),
        ((5, 2, 3), (3, 4)),
        ((5, 2, 3), (5, 3, 4)),
    ])
    def test_gradcheck(self, shape_a, shape_b):
        a = make(shape_a)
        b = make(shape_b)
        check_gradients(lambda x, y: x @ y, [a, b])


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, False), (0, True),
        ((0, 1), False), ((0, 2), True), (-1, False),
    ])
    def test_sum_gradcheck(self, axis, keepdims):
        a = make((2, 3, 4))
        check_gradients(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (1, False), ((0, 2), True), (2, True),
    ])
    def test_mean_gradcheck(self, axis, keepdims):
        a = make((2, 3, 4))
        check_gradients(lambda x: x.mean(axis=axis, keepdims=keepdims), [a])

    def test_sum_matches_numpy(self):
        a = RNG.standard_normal((3, 4))
        assert np.allclose(Tensor(a).sum(axis=1).data, a.sum(axis=1))

    def test_mean_matches_numpy(self):
        a = RNG.standard_normal((3, 4))
        assert np.allclose(Tensor(a).mean(axis=0).data, a.mean(axis=0))

    def test_var_matches_numpy(self):
        a = RNG.standard_normal((3, 4))
        assert np.allclose(Tensor(a).var(axis=0).data, a.var(axis=0))

    def test_var_gradcheck(self):
        a = make((3, 4))
        check_gradients(lambda x: x.var(axis=0), [a], atol=1e-4)

    def test_max_values(self):
        a = RNG.standard_normal((3, 4))
        assert np.allclose(Tensor(a).max(axis=1).data, a.max(axis=1))

    def test_max_gradient_unique(self):
        a = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_gradient_splits_ties(self):
        a = Tensor([3.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])

    def test_min(self):
        a = Tensor([[4.0, -1.0, 2.0]], requires_grad=True)
        out = a.min(axis=1)
        assert out.data.tolist() == [-1.0]
        out.sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_prod_values(self):
        a = Tensor([2.0, 3.0, 4.0])
        assert a.prod().item() == pytest.approx(24.0)

    def test_prod_gradcheck_nonzero(self):
        a = Tensor(RNG.standard_normal(5) + 3.0, requires_grad=True)
        check_gradients(lambda x: x.prod(), [a])

    def test_prod_gradient_with_single_zero(self):
        # d(prod)/dx_i at a single zero entry = product of the others.
        a = Tensor([2.0, 0.0, 3.0], requires_grad=True)
        a.prod().backward()
        assert np.allclose(a.grad, [0.0, 6.0, 0.0])

    def test_prod_gradient_with_two_zeros_is_zero(self):
        a = Tensor([0.0, 0.0, 3.0], requires_grad=True)
        a.prod().backward()
        assert np.allclose(a.grad, [0.0, 0.0, 0.0])


# ----------------------------------------------------------------------
# Shape ops
# ----------------------------------------------------------------------

class TestShapeOps:
    def test_reshape_values_and_grad(self):
        a = make((2, 6))
        check_gradients(lambda x: x.reshape(3, 4) * 2.0, [a])

    def test_reshape_minus_one(self):
        assert zeros(2, 6).reshape(4, -1).shape == (4, 3)

    def test_reshape_tuple_arg(self):
        assert zeros(6).reshape((2, 3)).shape == (2, 3)

    def test_transpose_default_reverses(self):
        assert zeros(2, 3, 4).transpose().shape == (4, 3, 2)

    def test_transpose_axes_gradcheck(self):
        a = make((2, 3, 4))
        check_gradients(lambda x: x.transpose(1, 0, 2) * 3.0, [a])

    def test_t_property(self):
        assert zeros(2, 3).T.shape == (3, 2)

    def test_swapaxes(self):
        a = make((2, 3, 4))
        assert a.swapaxes(0, 2).shape == (4, 3, 2)
        check_gradients(lambda x: x.swapaxes(1, 2), [a])

    def test_getitem_slice_gradcheck(self):
        a = make((4, 5))
        check_gradients(lambda x: x[1:3, ::2], [a])

    def test_getitem_int_index(self):
        a = make((4, 5))
        check_gradients(lambda x: x[2], [a])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        out = a[np.array([0, 0, 2])]
        out.sum().backward()
        assert np.allclose(a.grad, [2.0, 0.0, 1.0])

    def test_pad1d_values(self):
        a = Tensor(np.arange(3, dtype=float).reshape(1, 1, 3))
        padded = a.pad1d(2, 1)
        assert padded.data.tolist() == [[[0, 0, 0, 1, 2, 0]]]

    def test_pad1d_gradcheck(self):
        a = make((2, 3, 4))
        check_gradients(lambda x: x.pad1d(2, 1), [a])

    def test_pad1d_negative_raises(self):
        with pytest.raises(ValueError):
            zeros(1, 1, 3).pad1d(-1, 0)

    def test_concatenate_gradcheck(self):
        a, b = make((2, 3)), make((2, 2))
        check_gradients(lambda x, y: concatenate([x, y], axis=1), [a, b])

    def test_concatenate_values(self):
        out = concatenate([Tensor([1.0]), Tensor([2.0, 3.0])])
        assert out.data.tolist() == [1.0, 2.0, 3.0]

    def test_stack_gradcheck(self):
        a, b = make((2, 3)), make((2, 3))
        check_gradients(lambda x, y: stack([x, y], axis=1), [a, b])

    def test_stack_shape(self):
        assert stack([zeros(2, 3), zeros(2, 3)], axis=0).shape == (2, 2, 3)


# ----------------------------------------------------------------------
# Selection ops
# ----------------------------------------------------------------------

class TestSelectionOps:
    def test_where_values(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert out.data.tolist() == [1.0, 2.0]

    def test_where_gradcheck(self):
        cond = RNG.random((3, 4)) > 0.5
        a, b = make((3, 4)), make((3, 4))
        check_gradients(lambda x, y: where(cond, x, y), [a, b])

    def test_maximum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_minimum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        minimum(a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_maximum_broadcast(self):
        out = maximum(Tensor([[1.0, 4.0]]), Tensor(2.0))
        assert out.data.tolist() == [[2.0, 4.0]]
