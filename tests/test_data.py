"""Tests for datasets, loaders and the synthetic generators."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    NottinghamConfig,
    PPGDaliaConfig,
    WINDOW_SAMPLES,
    generate_subject,
    generate_tune,
    make_nottingham,
    make_ppg_dalia,
    next_frame_pairs,
    train_val_test_split,
)


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = ArrayDataset(np.zeros((5, 3)), np.ones((5, 1)))
        assert len(ds) == 5
        x, y = ds[2]
        assert x.shape == (3,)
        assert y.tolist() == [1.0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 3)), np.zeros((4, 1)))


class TestDataLoader:
    def make_ds(self, n=10):
        return ArrayDataset(np.arange(n, dtype=float).reshape(n, 1), np.zeros((n, 1)))

    def test_batch_count(self):
        loader = DataLoader(self.make_ds(10), batch_size=3)
        assert len(loader) == 4
        assert len(list(loader)) == 4

    def test_drop_last(self):
        loader = DataLoader(self.make_ds(10), batch_size=3, drop_last=True)
        assert len(loader) == 3
        batches = list(loader)
        assert all(x.shape[0] == 3 for x, _ in batches)

    def test_batch_shapes(self):
        loader = DataLoader(self.make_ds(10), batch_size=4)
        x, y = next(iter(loader))
        assert x.shape == (4, 1)
        assert y.shape == (4, 1)

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(self.make_ds(6), batch_size=2)
        xs = np.concatenate([x for x, _ in loader]).reshape(-1)
        assert xs.tolist() == list(range(6))

    def test_shuffle_changes_order_deterministically(self):
        a = DataLoader(self.make_ds(32), batch_size=32, shuffle=True,
                       rng=np.random.default_rng(0))
        b = DataLoader(self.make_ds(32), batch_size=32, shuffle=True,
                       rng=np.random.default_rng(0))
        xa = next(iter(a))[0].reshape(-1)
        xb = next(iter(b))[0].reshape(-1)
        assert np.allclose(xa, xb)
        assert not np.allclose(xa, np.arange(32))

    def test_shuffle_covers_all_samples(self):
        loader = DataLoader(self.make_ds(10), batch_size=3, shuffle=True,
                            rng=np.random.default_rng(1))
        xs = np.concatenate([x for x, _ in loader]).reshape(-1)
        assert sorted(xs.tolist()) == list(range(10))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self.make_ds(), batch_size=0)


class TestSplit:
    def test_partition_sizes(self):
        ds = ArrayDataset(np.zeros((100, 2)), np.zeros((100, 1)))
        tr, va, te = train_val_test_split(ds, 0.2, 0.1, rng=np.random.default_rng(0))
        assert len(tr) == 70
        assert len(va) == 20
        assert len(te) == 10

    def test_disjoint_cover(self):
        ds = ArrayDataset(np.arange(20, dtype=float).reshape(20, 1), np.zeros((20, 1)))
        tr, va, te = train_val_test_split(ds, 0.25, 0.25, rng=np.random.default_rng(0))
        together = np.concatenate([tr.inputs, va.inputs, te.inputs]).reshape(-1)
        assert sorted(together.tolist()) == list(range(20))

    def test_invalid_fractions(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros((10, 1)))
        with pytest.raises(ValueError):
            train_val_test_split(ds, 0.6, 0.5)


class TestNottingham:
    def test_roll_shape_and_binary(self):
        cfg = NottinghamConfig(num_tunes=2, seq_len=32)
        roll = generate_tune(cfg, np.random.default_rng(0))
        assert roll.shape == (88, 32)
        assert set(np.unique(roll)).issubset({0.0, 1.0})

    def test_polyphony(self):
        """Frames carry chords: several keys active simultaneously."""
        roll = generate_tune(NottinghamConfig(seq_len=64), np.random.default_rng(1))
        notes_per_frame = roll.sum(axis=0)
        assert notes_per_frame.max() >= 3
        assert notes_per_frame.mean() > 1.5

    def test_chords_are_sustained(self):
        """Harmonic state changes slower than the frame rate."""
        cfg = NottinghamConfig(seq_len=64, chord_hold=8)
        roll = generate_tune(cfg, np.random.default_rng(2))
        changes = np.abs(np.diff(roll, axis=1)).sum(axis=0)
        # Most frame transitions change at most the melody (<= 2 keys).
        assert (changes <= 2).mean() > 0.5

    def test_next_frame_pairs(self):
        roll = np.arange(12, dtype=float).reshape(4, 3)
        x, y = next_frame_pairs(roll)
        assert np.allclose(x, roll[:, :-1])
        assert np.allclose(y, roll[:, 1:])

    def test_dataset_shapes(self):
        cfg = NottinghamConfig(num_tunes=3, seq_len=20)
        ds = make_nottingham(cfg, seed=0)
        assert len(ds) == 3
        assert ds.inputs.shape == (3, 88, 19)
        assert ds.targets.shape == (3, 88, 19)

    def test_target_is_shifted_input(self):
        ds = make_nottingham(NottinghamConfig(num_tunes=1, seq_len=16), seed=0)
        assert np.allclose(ds.inputs[0][:, 1:], ds.targets[0][:, :-1])

    def test_deterministic_per_seed(self):
        cfg = NottinghamConfig(num_tunes=2, seq_len=16)
        a = make_nottingham(cfg, seed=5)
        b = make_nottingham(cfg, seed=5)
        assert np.allclose(a.inputs, b.inputs)

    def test_seeds_differ(self):
        cfg = NottinghamConfig(num_tunes=2, seq_len=16)
        a = make_nottingham(cfg, seed=1)
        b = make_nottingham(cfg, seed=2)
        assert not np.allclose(a.inputs, b.inputs)


class TestPPGDalia:
    CFG = PPGDaliaConfig(num_subjects=1, seconds_per_subject=30)

    def test_subject_shapes(self):
        signals, hr = generate_subject(self.CFG, np.random.default_rng(0))
        assert signals.shape == (4, 30 * 32)
        assert hr.shape == (30 * 32,)

    def test_hr_within_bounds(self):
        _, hr = generate_subject(self.CFG, np.random.default_rng(0))
        assert hr.min() >= self.CFG.hr_low
        assert hr.max() <= self.CFG.hr_high

    def test_hr_drifts_smoothly(self):
        _, hr = generate_subject(self.CFG, np.random.default_rng(0))
        # Instantaneous HR jumps stay physiological (< 2 BPM per sample).
        assert np.abs(np.diff(hr)).max() < 2.0

    def test_signals_standardized(self):
        signals, _ = generate_subject(self.CFG, np.random.default_rng(0))
        assert np.allclose(signals.mean(axis=1), 0.0, atol=1e-8)
        assert np.allclose(signals.std(axis=1), 1.0, atol=1e-6)

    def test_ppg_has_cardiac_periodicity(self):
        """The PPG channel's dominant frequency tracks the golden HR."""
        cfg = PPGDaliaConfig(num_subjects=1, seconds_per_subject=60,
                             motion_prob=0.0, noise_std=0.0)
        signals, hr = generate_subject(cfg, np.random.default_rng(3))
        ppg = signals[0]
        spectrum = np.abs(np.fft.rfft(ppg))
        freqs = np.fft.rfftfreq(len(ppg), d=1.0 / 32)
        # Ignore the sub-cardiac band (baseline/respiration < 0.7 Hz).
        band = freqs >= 0.7
        dominant_hz = freqs[band][np.argmax(spectrum[band])]
        mean_hr_hz = hr.mean() / 60.0
        assert dominant_hz == pytest.approx(mean_hr_hz, rel=0.25)

    def test_windowed_dataset_shapes(self):
        ds = make_ppg_dalia(self.CFG, seed=0)
        assert ds.inputs.shape[1:] == (4, WINDOW_SAMPLES)
        assert ds.targets.shape[1:] == (1,)
        # 30 s recording, 8 s windows, 2 s shift -> 12 windows.
        assert len(ds) == 12

    def test_targets_are_bpm(self):
        ds = make_ppg_dalia(self.CFG, seed=0)
        assert np.all(ds.targets >= self.CFG.hr_low)
        assert np.all(ds.targets <= self.CFG.hr_high)

    def test_deterministic_per_seed(self):
        a = make_ppg_dalia(self.CFG, seed=7)
        b = make_ppg_dalia(self.CFG, seed=7)
        assert np.allclose(a.inputs, b.inputs)
        assert np.allclose(a.targets, b.targets)
