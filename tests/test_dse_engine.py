"""Tests for the parallel DSE execution engine and its results cache.

The engine's contract: a sweep dispatched to a worker pool returns
*bit-identical* points, in the same grid order, as the serial path — and a
sweep resumed from a cache file skips the completed (λ, warmup) points
entirely while reproducing the same :class:`DSEResult`.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import PITConv1d
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import (
    DSECache,
    DSEEngine,
    DSEPoint,
    executor_default,
    run_dse,
    stack_width_default,
    workers_default,
)
from repro.evaluation.dse import DSEResult
from repro.nn import CausalConv1d, Module, ReLU, mse_loss

LAMBDAS = [0.0, 2.0]
WARMUPS = [0, 1]
SCHEDULE = dict(gamma_lr=0.2, max_prune_epochs=2, finetune_epochs=1)


def _expected_builds(lambdas, warmups):
    """Seed instantiations an uncached sweep performs.

    One per grid point sequentially; one per same-warmup chunk when the
    suite runs under a REPRO_DSE_STACK width (the stacked CI leg).
    """
    width = stack_width_default()
    per_group = -(-len(lambdas) // width)    # ceil division
    return per_group * len(warmups)


class Tiny(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c = PITConv1d(1, 2, rf_max=9, rng=rng)
        self.r = ReLU()
        self.h = CausalConv1d(2, 1, 1, rng=rng)

    def forward(self, x):
        return self.h(self.r(self.c(x)))


class CountingFactory:
    """Picklable factory that counts how many seeds it builds."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
        return Tiny()


def _loaders(shuffle=False, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((12, 1, 10))
    y = np.concatenate([np.zeros((12, 1, 1)), x[:, :, :-1]], axis=2)
    train = DataLoader(ArrayDataset(x[:8], y[:8]), 4, shuffle=shuffle,
                       rng=np.random.default_rng(seed + 1))
    val = DataLoader(ArrayDataset(x[8:], y[8:]), 4)
    return train, val


def _sweep(workers, cache_path=None, shuffle=False, factory=Tiny,
           compile_step=None, graph_opt=None):
    train, val = _loaders(shuffle=shuffle)
    engine = DSEEngine(factory, mse_loss, train, val, workers=workers,
                       cache_path=cache_path, trainer_kwargs=dict(SCHEDULE),
                       compile_step=compile_step, graph_opt=graph_opt)
    return engine.run(LAMBDAS, warmups=WARMUPS)


def _assert_identical(a: DSEResult, b: DSEResult) -> None:
    assert len(a.points) == len(b.points)
    for pa, pb in zip(a.points, b.points):
        assert (pa.lam, pa.warmup_epochs) == (pb.lam, pb.warmup_epochs)
        assert pa.dilations == pb.dilations
        assert pa.params == pb.params
        assert pa.loss == pb.loss  # bit-identical, not allclose
        assert pa.result is not None and pb.result is not None
        assert pa.result.best_val == pb.result.best_val
        assert pa.result.prune_epochs == pb.result.prune_epochs


class TestParallelDeterminism:
    def test_two_workers_bit_identical_to_serial(self):
        serial = _sweep(workers=0)
        parallel = _sweep(workers=2)
        _assert_identical(serial, parallel)

    def test_grid_ordering_is_warmup_major(self):
        result = _sweep(workers=2)
        combos = [(p.warmup_epochs, p.lam) for p in result.points]
        assert combos == [(w, l) for w in WARMUPS for l in LAMBDAS]

    def test_shuffling_loaders_do_not_break_determinism(self):
        """Each point deep-copies the loaders, so a shared shuffle RNG
        cannot thread state between grid points in completion order."""
        serial = _sweep(workers=0, shuffle=True)
        parallel = _sweep(workers=2, shuffle=True)
        _assert_identical(serial, parallel)

    def test_compiled_sweep_bit_identical_to_eager(self):
        """compile_step routes every grid point through the graph-capture
        executor; results (and therefore cache entries) must not change."""
        eager = _sweep(workers=0)
        compiled = _sweep(workers=0, compile_step=True)
        parallel_compiled = _sweep(workers=2, compile_step=True)
        _assert_identical(eager, compiled)
        _assert_identical(eager, parallel_compiled)

    def test_compile_flag_accepted_via_trainer_kwargs(self):
        """Legacy spelling: compile_step inside trainer_kwargs is stripped
        into the engine knob (and stays out of cache keys)."""
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val,
                           trainer_kwargs=dict(SCHEDULE, compile_step=True))
        assert engine.compile_step is True
        assert "compile_step" not in engine.trainer_kwargs
        _assert_identical(_sweep(workers=0),
                          engine.run(LAMBDAS, warmups=WARMUPS))

    def test_graph_opt_levels_bit_identical(self):
        """The optimizer passes must not change sweep results either way."""
        eager = _sweep(workers=0)
        optimized = _sweep(workers=0, compile_step=True, graph_opt="default")
        verbatim = _sweep(workers=0, compile_step=True, graph_opt="none")
        _assert_identical(eager, optimized)
        _assert_identical(eager, verbatim)

    def test_graph_opt_stripped_from_trainer_kwargs_and_cache_keys(self,
                                                                   tmp_path):
        """graph_opt is a speed knob like compile_step: stripped from
        trainer_kwargs (whose JSON forms the cache key) so optimized and
        unoptimized sweeps share cache entries."""
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val,
                           trainer_kwargs=dict(SCHEDULE, graph_opt="none"))
        assert engine.graph_opt == "none"
        assert "graph_opt" not in engine.trainer_kwargs

        cache = str(tmp_path / "cache.json")
        first = _sweep(workers=0, cache_path=cache, compile_step=True,
                       graph_opt="none")
        factory = CountingFactory()
        resumed = _sweep(workers=0, cache_path=cache, factory=factory,
                         compile_step=True, graph_opt="default")
        assert factory.calls == 0  # every point came from the cache
        _assert_identical(first, resumed)

    def test_process_executor_matches_serial(self):
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val, workers=2,
                           executor="process",
                           trainer_kwargs=dict(SCHEDULE))
        parallel = engine.run(LAMBDAS, warmups=[0])
        serial = DSEEngine(Tiny, mse_loss, train, val,
                           trainer_kwargs=dict(SCHEDULE)).run(LAMBDAS,
                                                              warmups=[0])
        _assert_identical(serial, parallel)

    def test_private_loaders_share_dataset_storage(self):
        """Grid points deep-copy all mutable loader state but share the
        (read-only) sample arrays."""
        from repro.evaluation.dse import _private_loader
        train, _ = _loaders(shuffle=True)
        clone = _private_loader(train)
        assert clone.dataset.inputs is train.dataset.inputs
        assert clone.dataset.targets is train.dataset.targets
        assert clone.rng is not train.rng
        # The private RNG starts from the original's current state...
        assert (clone.rng.bit_generator.state
                == train.rng.bit_generator.state)
        # ...and consuming it leaves the original untouched.
        clone.rng.random()
        assert (clone.rng.bit_generator.state
                != train.rng.bit_generator.state)

    def test_grid_point_applies_pinned_backend(self):
        """A worker (think: spawned process with its own import-time
        default) trains under the backend the engine pinned at run(),
        scoped thread-locally so the caller's default is untouched."""
        from repro.autograd import current_backend
        from repro.evaluation.dse import _train_grid_point
        train, val = _loaders()
        previous = current_backend()
        point = _train_grid_point(Tiny, mse_loss, train, val, 0.0, 0,
                                  dict(SCHEDULE), "im2col")
        assert point.params > 0
        assert current_backend() == previous  # scope restored
        # The pin is actually consumed: an unknown name is rejected.
        with pytest.raises(ValueError, match="unknown conv backend"):
            _train_grid_point(Tiny, mse_loss, train, val, 0.0, 0,
                              dict(SCHEDULE), "bogus")

    def test_engine_validates_arguments(self):
        train, val = _loaders()
        with pytest.raises(ValueError, match="executor"):
            DSEEngine(Tiny, mse_loss, train, val, executor="mpi")
        with pytest.raises(ValueError, match="workers"):
            DSEEngine(Tiny, mse_loss, train, val, workers=-1)


class TestCache:
    def test_resume_skips_completed_points(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        factory = CountingFactory()
        first = _sweep(workers=0, cache_path=cache, factory=factory)
        builds = _expected_builds(LAMBDAS, WARMUPS)
        assert factory.calls == builds

        resumed = _sweep(workers=0, cache_path=cache, factory=factory)
        assert factory.calls == builds  # no retraining
        _assert_identical(first, resumed)

    def test_parallel_resume_from_serial_cache(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        serial = _sweep(workers=0, cache_path=cache)
        factory = CountingFactory()
        parallel = _sweep(workers=2, cache_path=cache, factory=factory)
        assert factory.calls == 0
        _assert_identical(serial, parallel)

    def test_partial_cache_trains_only_missing_points(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val, cache_path=cache,
                           trainer_kwargs=dict(SCHEDULE))
        engine.run([LAMBDAS[0]], warmups=[0])

        factory = CountingFactory()
        engine = DSEEngine(factory, mse_loss, train, val, cache_path=cache,
                           trainer_kwargs=dict(SCHEDULE))
        result = engine.run(LAMBDAS, warmups=[0])
        assert factory.calls == 1  # only the uncached λ trains
        assert [p.lam for p in result.points] == LAMBDAS

    def test_cache_keyed_by_tag(self, tmp_path):
        """Different model/data identities never share cache entries."""
        cache = str(tmp_path / "dse.json")
        train, val = _loaders()
        DSEEngine(Tiny, mse_loss, train, val, cache_path=cache,
                  cache_tag="width=0.25",
                  trainer_kwargs=dict(SCHEDULE)).run([0.0], warmups=[0])

        factory = CountingFactory()
        DSEEngine(factory, mse_loss, train, val, cache_path=cache,
                  cache_tag="width=1.0",
                  trainer_kwargs=dict(SCHEDULE)).run([0.0], warmups=[0])
        assert factory.calls == 1  # different tag -> cache miss

    def test_cache_keyed_by_conv_backend(self, tmp_path):
        """Points trained under one backend are not returned under another."""
        from repro.autograd import use_backend
        cache = str(tmp_path / "dse.json")
        train, val = _loaders()
        with use_backend("einsum"):
            DSEEngine(Tiny, mse_loss, train, val, cache_path=cache,
                      trainer_kwargs=dict(SCHEDULE)).run([0.0], warmups=[0])
        factory = CountingFactory()
        with use_backend("im2col"):
            DSEEngine(factory, mse_loss, train, val, cache_path=cache,
                      trainer_kwargs=dict(SCHEDULE)).run([0.0], warmups=[0])
        assert factory.calls == 1  # different backend -> cache miss

    def test_cache_rejects_non_json_trainer_settings(self):
        """Object-valued kwargs can't be keyed stably (reprs embed
        per-process addresses); refuse loudly rather than mis-cache."""
        with pytest.raises(ValueError, match="JSON-serializable"):
            DSECache.key(0.0, 0, {"callback": object()}, backend="einsum")
        # Scalar settings (everything PITTrainer accepts) key fine.
        key = DSECache.key(0.0, 0, dict(SCHEDULE), backend="einsum")
        assert "backend=einsum" in key

    def test_cache_keyed_by_trainer_settings(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        train, val = _loaders()
        DSEEngine(Tiny, mse_loss, train, val, cache_path=cache,
                  trainer_kwargs=dict(SCHEDULE)).run([0.0], warmups=[0])

        factory = CountingFactory()
        other = dict(SCHEDULE, max_prune_epochs=1)
        DSEEngine(factory, mse_loss, train, val, cache_path=cache,
                  trainer_kwargs=other).run([0.0], warmups=[0])
        assert factory.calls == 1  # different settings -> cache miss

    def test_completed_points_survive_a_failing_grid_point(self, tmp_path):
        """A crashing point is isolated: the sweep completes, the healthy
        point is cached, and a resume retrains only the failed one."""
        cache = str(tmp_path / "dse.json")
        train, val = _loaders()

        class ExplodingFactory:
            """Fails on its first build; healthy for the other grid points."""
            def __init__(self):
                self.calls = 0
                self._lock = threading.Lock()

            def __call__(self):
                with self._lock:
                    self.calls += 1
                    if self.calls == 1:
                        raise RuntimeError("diverged")
                return Tiny()

        # stack=1 pins the per-point schedule this test's failure
        # accounting assumes (a stacked chunk falls back point-by-point).
        engine = DSEEngine(ExplodingFactory(), mse_loss, train, val,
                           workers=2, cache_path=cache, stack=1,
                           trainer_kwargs=dict(SCHEDULE))
        result = engine.run(LAMBDAS, warmups=[0])  # must not raise
        assert len(result.failed_points) == 1
        assert "diverged" in result.failed_points[0].error
        assert len(result.ok_points) == 1

        with open(cache) as handle:
            recorded = json.load(handle)["points"]
        # Both outcomes are persisted; only one is a servable result.
        statuses = sorted(e.get("status", "ok") for e in recorded.values())
        assert statuses == ["failed", "ok"]

        # Resuming retrains only the failed point (failed cache entries
        # are provenance, never served as results).
        factory = CountingFactory()
        resumed = DSEEngine(factory, mse_loss, train, val, workers=2,
                            cache_path=cache, stack=1,
                            trainer_kwargs=dict(SCHEDULE)).run(LAMBDAS,
                                                               warmups=[0])
        assert factory.calls == 1
        assert [p.lam for p in resumed.points] == LAMBDAS
        assert all(p.ok for p in resumed.points)

    def test_failure_without_cache_is_isolated(self):
        """A failing point must not abort the sweep: the remaining grid
        still trains and the failure surfaces as a failed DSEPoint."""
        train, val = _loaders()

        class FailFirst:
            def __init__(self):
                self.calls = 0
                self._lock = threading.Lock()

            def __call__(self):
                with self._lock:
                    self.calls += 1
                    if self.calls == 1:
                        raise RuntimeError("diverged")
                return Tiny()

        factory = FailFirst()
        engine = DSEEngine(factory, mse_loss, train, val, workers=2,
                           stack=1, trainer_kwargs=dict(SCHEDULE))
        grid = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        result = engine.run(grid, warmups=[0])
        assert factory.calls == len(grid)  # every point was attempted
        assert len(result.failed_points) == 1
        assert len(result.ok_points) == len(grid) - 1
        assert [p.lam for p in result.points] == grid  # grid order kept
        assert engine.last_run_stats["failed"] == 1

    def test_cache_file_format(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        result = _sweep(workers=0, cache_path=cache)
        with open(cache) as handle:
            payload = json.load(handle)
        assert payload["version"] == DSECache.VERSION
        assert len(payload["points"]) == len(result.points)
        entry = next(iter(payload["points"].values()))
        assert {"lam", "warmup_epochs", "dilations", "params",
                "loss", "result"} <= set(entry)

    def test_round_trip_restores_full_result(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        original = _sweep(workers=0, cache_path=cache)
        restored = _sweep(workers=0, cache_path=cache)
        for pa, pb in zip(original.points, restored.points):
            assert isinstance(pb, DSEPoint)
            assert pb.result.history == pa.result.history
            assert pb.result.total_seconds == pa.result.total_seconds
            assert pb.dilations == pa.dilations

    def test_concurrent_cache_instances_merge_on_flush(self, tmp_path):
        """Two processes sharing one cache file must not erase each
        other's completed points on flush (simulated with two instances)."""
        path = str(tmp_path / "shared.json")
        point = DSEPoint(lam=0.0, warmup_epochs=0, dilations=(1,),
                         params=1, loss=0.5)
        a = DSECache(path)
        b = DSECache(path)  # loaded before `a` records anything
        a.put("ka", point)
        b.put("kb", point)  # must merge ka from disk, not overwrite it
        with open(path) as handle:
            recorded = json.load(handle)["points"]
        assert set(recorded) == {"ka", "kb"}

    def test_rejects_unknown_cache_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "points": {}}))
        with pytest.raises(ValueError, match="cache version"):
            DSECache(str(path))


class StubEvaluator:
    """Deterministic point evaluator with a stable cache identity."""

    cache_name = "stub"

    def __call__(self, model, point):
        assert model is not None  # gets the trained model, not just the point
        return {"latency_ms": 10.0 + point.lam, "energy_mj": 2.5}


class TestCacheBugfixes:
    """Regression tests for the two confirmed DSECache bugs."""

    def test_key_normalizes_numpy_scalars(self):
        """np.linspace grids (numpy scalars) must key identically to the
        same values spelled as Python numbers — `lam!r` used to embed
        `np.float64(0.02)` and miss every resume."""
        native = DSECache.key(0.02, 5, dict(SCHEDULE), backend="einsum")
        numpied = DSECache.key(np.float64(0.02), np.int64(5),
                               dict(SCHEDULE), backend="einsum")
        assert native == numpied
        assert "np.float64" not in numpied

    def test_numpy_grid_resumes_python_float_cache(self, tmp_path):
        """End-to-end: a cache written with Python-float λs satisfies a
        resume whose grid comes from np.linspace/np.arange."""
        cache = str(tmp_path / "dse.json")
        train, val = _loaders()
        DSEEngine(Tiny, mse_loss, train, val, cache_path=cache,
                  trainer_kwargs=dict(SCHEDULE)).run(LAMBDAS, warmups=WARMUPS)

        factory = CountingFactory()
        numpy_lambdas = np.linspace(LAMBDAS[0], LAMBDAS[-1], len(LAMBDAS))
        assert [float(v) for v in numpy_lambdas] == LAMBDAS  # same grid
        resumed = DSEEngine(factory, mse_loss, train, val, cache_path=cache,
                            trainer_kwargs=dict(SCHEDULE)).run(
                                numpy_lambdas, warmups=np.array(WARMUPS))
        assert factory.calls == 0  # every numpy-keyed point hit
        assert len(resumed.points) == len(LAMBDAS) * len(WARMUPS)

    def test_put_accepts_numpy_typed_point(self, tmp_path):
        """`put` used to crash with `TypeError: Object of type int64 is
        not JSON serializable` when dilations/params were numpy ints."""
        path = str(tmp_path / "np.json")
        point = DSEPoint(
            lam=np.float64(0.5), warmup_epochs=np.int64(1),
            dilations=(np.int64(1), np.int64(4)), params=np.int64(123),
            loss=np.float64(0.25),
            metrics={"latency_ms": np.float64(7.5), "macs": np.int64(80)})
        cache = DSECache(path)
        cache.put("k", point)  # must not raise

        with open(path) as handle:
            entry = json.load(handle)["points"]["k"]
        assert entry["params"] == 123 and isinstance(entry["params"], int)
        assert entry["dilations"] == [1, 4]
        assert entry["metrics"] == {"latency_ms": 7.5, "macs": 80}

        restored = DSECache(path).get("k")
        assert restored.params == 123
        assert restored.dilations == (1, 4)
        assert restored.metrics["latency_ms"] == 7.5


class TestCacheVersions:
    def test_file_format_is_current_with_metrics_and_status(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        _sweep(workers=0, cache_path=cache)
        with open(cache) as handle:
            payload = json.load(handle)
        assert payload["version"] == DSECache.VERSION
        for entry in payload["points"].values():
            assert entry["metrics"] == {}  # no evaluators ran
            assert entry["status"] == "ok"
            assert entry["error"] is None

    def test_v1_file_resumes_without_retraining(self, tmp_path):
        """Migration path: a version-1 file (no metrics key) loads and
        satisfies every grid point of an evaluator-less resume."""
        cache = str(tmp_path / "dse.json")
        first = _sweep(workers=0, cache_path=cache)
        with open(cache) as handle:
            payload = json.load(handle)
        for entry in payload["points"].values():
            del entry["metrics"]  # exactly what v1 writers produced
        payload["version"] = 1
        with open(cache, "w") as handle:
            json.dump(payload, handle)

        factory = CountingFactory()
        resumed = _sweep(workers=0, cache_path=cache, factory=factory)
        assert factory.calls == 0
        _assert_identical(first, resumed)
        assert all(p.metrics == {} for p in resumed.points)

    def test_v2_file_resumes_without_retraining(self, tmp_path):
        """A version-2 file (no status/error/attempts keys) loads and
        its entries are served as healthy points."""
        cache = str(tmp_path / "dse.json")
        first = _sweep(workers=0, cache_path=cache)
        with open(cache) as handle:
            payload = json.load(handle)
        for entry in payload["points"].values():
            for key in ("status", "error", "attempts"):
                entry.pop(key, None)  # exactly what v2 writers produced
        payload["version"] = 2
        with open(cache, "w") as handle:
            json.dump(payload, handle)

        factory = CountingFactory()
        resumed = _sweep(workers=0, cache_path=cache, factory=factory)
        assert factory.calls == 0
        _assert_identical(first, resumed)
        assert all(p.ok for p in resumed.points)

    def test_old_file_upgraded_on_next_write(self, tmp_path):
        path = str(tmp_path / "dse.json")
        with open(path, "w") as handle:
            json.dump({"version": 1, "points": {}}, handle)
        cache = DSECache(path)  # accepted
        cache.put("k", DSEPoint(lam=0.0, warmup_epochs=0, dilations=(1,),
                                params=1, loss=0.5))
        with open(path) as handle:
            assert json.load(handle)["version"] == DSECache.VERSION


class TestPointEvaluators:
    def _sweep(self, cache_path=None, factory=Tiny, evaluators=None):
        train, val = _loaders()
        engine = DSEEngine(factory, mse_loss, train, val,
                           cache_path=cache_path,
                           trainer_kwargs=dict(SCHEDULE),
                           point_evaluators=evaluators)
        return engine.run(LAMBDAS, warmups=[0])

    def test_evaluators_annotate_points(self):
        result = self._sweep(evaluators=[StubEvaluator()])
        for point in result.points:
            assert point.metrics == {"latency_ms": 10.0 + point.lam,
                                     "energy_mj": 2.5}

    def test_metrics_survive_cache_resume(self, tmp_path):
        cache = str(tmp_path / "dse.json")
        first = self._sweep(cache_path=cache, evaluators=[StubEvaluator()])
        factory = CountingFactory()
        resumed = self._sweep(cache_path=cache, factory=factory,
                              evaluators=[StubEvaluator()])
        assert factory.calls == 0  # resumed without retraining...
        assert [p.metrics for p in resumed.points] == \
               [p.metrics for p in first.points]  # ...metrics intact

    def test_evaluator_identity_is_part_of_the_key(self, tmp_path):
        """A point cached without hw metrics cannot satisfy an
        evaluator-carrying resume (the weights needed to compute the
        missing metrics are gone), so the key must differ."""
        cache = str(tmp_path / "dse.json")
        self._sweep(cache_path=cache)  # no evaluators
        factory = CountingFactory()
        result = self._sweep(cache_path=cache, factory=factory,
                             evaluators=[StubEvaluator()])
        # Full retrain, with metrics (one build per chunk under stacking).
        assert factory.calls == _expected_builds(LAMBDAS, [0])
        assert all(p.metrics for p in result.points)

    def test_annotated_cache_satisfies_plain_resume(self, tmp_path):
        """The reverse direction is free: entries an evaluator-carrying
        sweep recorded are a superset of what an evaluator-less resume
        needs, so it must not retrain."""
        cache = str(tmp_path / "dse.json")
        annotated = self._sweep(cache_path=cache,
                                evaluators=[StubEvaluator()])
        factory = CountingFactory()
        plain = self._sweep(cache_path=cache, factory=factory)
        assert factory.calls == 0
        _assert_identical(DSEResult(points=annotated.points),
                          DSEResult(points=plain.points))
        # The cached metrics ride along as a bonus.
        assert [p.metrics for p in plain.points] == \
               [p.metrics for p in annotated.points]

    def test_evaluator_key_is_delimiter_injection_safe(self):
        """Names carry configuration strings (commas, pipes); a bare join
        would let different stacks collide on one key."""
        def key(evaluators):
            return DSECache.key(0.0, 0, dict(SCHEDULE), backend="einsum",
                                evaluators=evaluators)
        assert key(["a,b"]) != key(["a", "b"])
        assert key(["a|evaluators=x"]) != key(["a"])
        assert key(["gap8(bits=4,shape=1x1x10)"]) != \
               key(["gap8(bits=8,shape=1x1x10)"])

    def test_evaluator_names(self):
        import functools
        from repro.evaluation import evaluator_name

        def my_probe(model, point):
            return {}

        assert evaluator_name(StubEvaluator()) == "stub"
        assert evaluator_name(my_probe) == "my_probe"
        # Anonymous callables key indistinguishably from one another, so
        # they are refused rather than silently sharing cache entries.
        with pytest.raises(ValueError, match="cache identity"):
            evaluator_name(lambda model, point: {})
        with pytest.raises(ValueError, match="cache identity"):
            evaluator_name(functools.partial(my_probe, None))


class TestRunDseWrapper:
    def test_run_dse_accepts_engine_knobs(self, tmp_path):
        train, val = _loaders()
        result = run_dse(Tiny, mse_loss, train, val, lambdas=LAMBDAS,
                         warmups=[0], trainer_kwargs=dict(SCHEDULE),
                         workers=2, cache_path=str(tmp_path / "c.json"))
        assert len(result.points) == len(LAMBDAS)

    def test_optional_result_annotation(self):
        """Satellite fix: DSEPoint.result is Optional and defaults to None."""
        from typing import get_args, get_origin, get_type_hints, Union
        hints = get_type_hints(DSEPoint)
        assert get_origin(hints["result"]) is Union
        assert type(None) in get_args(hints["result"])
        point = DSEPoint(lam=0.0, warmup_epochs=0, dilations=(1,),
                         params=1, loss=0.0)
        assert point.result is None


class TestEnvDefaults:
    """REPRO_DSE_WORKERS / REPRO_DSE_EXECUTOR seed the engine the way
    REPRO_DSE_STACK seeds stack width (the CI fault-injection leg uses
    them to force pooled process execution); explicit arguments win."""

    def test_defaults_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DSE_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_DSE_EXECUTOR", raising=False)
        assert workers_default() == 0
        assert executor_default() == "thread"
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val)
        assert engine.workers == 0 and engine.executor == "thread"

    def test_env_seeds_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_WORKERS", "3")
        monkeypatch.setenv("REPRO_DSE_EXECUTOR", "process")
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val)
        assert engine.workers == 3 and engine.executor == "process"

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_WORKERS", "3")
        monkeypatch.setenv("REPRO_DSE_EXECUTOR", "process")
        train, val = _loaders()
        engine = DSEEngine(Tiny, mse_loss, train, val, workers=0,
                           executor="thread")
        assert engine.workers == 0 and engine.executor == "thread"

    def test_bad_env_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_WORKERS", "-1")
        with pytest.raises(ValueError, match="REPRO_DSE_WORKERS"):
            workers_default()
        monkeypatch.setenv("REPRO_DSE_WORKERS", "2")
        monkeypatch.setenv("REPRO_DSE_EXECUTOR", "fibers")
        train, val = _loaders()
        with pytest.raises(ValueError, match="executor"):
            DSEEngine(Tiny, mse_loss, train, val)
