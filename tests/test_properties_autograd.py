"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, check_gradients, conv1d_causal

settings.register_profile("repro", max_examples=25, deadline=None)
settings.load_profile("repro")


def arrays(draw, shape, lo=-3.0, hi=3.0):
    n = int(np.prod(shape))
    values = draw(st.lists(
        st.floats(lo, hi, allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n))
    return np.array(values).reshape(shape)


shapes_2d = st.tuples(st.integers(1, 4), st.integers(1, 4))


@st.composite
def tensor_pairs_broadcastable(draw):
    """Two shapes that numpy can broadcast together."""
    base = draw(shapes_2d)
    variant = draw(st.sampled_from(["same", "row", "col", "scalar"]))
    if variant == "same":
        other = base
    elif variant == "row":
        other = (1, base[1])
    elif variant == "col":
        other = (base[0], 1)
    else:
        other = ()
    a = arrays(draw, base)
    b = arrays(draw, other)
    return a, b


class TestAlgebraicIdentities:
    @given(tensor_pairs_broadcastable())
    def test_addition_commutes(self, pair):
        a, b = pair
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        assert np.allclose(left, right)

    @given(tensor_pairs_broadcastable())
    def test_distributivity(self, pair):
        a, b = pair
        c = 1.7
        left = ((Tensor(a) + Tensor(b)) * c).data
        right = (Tensor(a) * c + Tensor(b) * c).data
        assert np.allclose(left, right)

    @given(tensor_pairs_broadcastable())
    def test_sum_of_parts_equals_sum_of_concat(self, pair):
        a, b = pair
        total = Tensor(a).sum().item() + Tensor(b).sum().item()
        assert np.isclose((Tensor(a).sum() + Tensor(b).sum()).item(), total)


class TestGradientProperties:
    @given(tensor_pairs_broadcastable())
    def test_broadcast_mul_gradients(self, pair):
        a_data, b_data = pair
        a = Tensor(a_data + 0.1, requires_grad=True)
        b = Tensor(b_data + 0.1, requires_grad=True)
        check_gradients(lambda x, y: x * y, [a, b], atol=1e-4)

    @given(shapes_2d)
    def test_grad_of_sum_is_ones(self, shape):
        a = Tensor(np.random.default_rng(0).standard_normal(shape),
                   requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, 1.0)

    @given(shapes_2d)
    def test_grad_of_mean_is_inverse_count(self, shape):
        a = Tensor(np.random.default_rng(0).standard_normal(shape),
                   requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 1.0 / a.size)

    @given(st.integers(1, 4), st.integers(1, 8))
    def test_relu_grad_is_indicator(self, rows, cols):
        data = np.random.default_rng(rows * 13 + cols).standard_normal((rows, cols))
        a = Tensor(data, requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, (data > 0).astype(float))

    @given(st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=6))
    def test_linearity_of_backward(self, values):
        """grad(2*f) == 2*grad(f)."""
        x1 = Tensor(np.array(values), requires_grad=True)
        (x1 * x1).sum().backward()
        g1 = x1.grad.copy()
        x2 = Tensor(np.array(values), requires_grad=True)
        ((x2 * x2) * 2.0).sum().backward()
        assert np.allclose(x2.grad, 2 * g1)


class TestConvProperties:
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 4),
           st.integers(1, 3), st.integers(5, 12))
    def test_conv_linearity_in_input(self, n, c_in, c_out, k, t):
        rng = np.random.default_rng(n * 100 + c_in * 10 + k)
        x = rng.standard_normal((n, c_in, t))
        w = Tensor(rng.standard_normal((c_out, c_in, k)))
        y1 = conv1d_causal(Tensor(x), w).data
        y2 = conv1d_causal(Tensor(2 * x), w).data
        assert np.allclose(y2, 2 * y1)

    @given(st.integers(1, 3), st.integers(2, 4), st.integers(6, 14))
    def test_conv_additivity_in_weights(self, c, k, t):
        rng = np.random.default_rng(c * 31 + k * 7 + t)
        x = Tensor(rng.standard_normal((1, c, t)))
        w1 = rng.standard_normal((2, c, k))
        w2 = rng.standard_normal((2, c, k))
        lhs = conv1d_causal(x, Tensor(w1 + w2)).data
        rhs = conv1d_causal(x, Tensor(w1)).data + conv1d_causal(x, Tensor(w2)).data
        assert np.allclose(lhs, rhs)

    @given(st.integers(1, 4), st.integers(1, 3), st.integers(6, 12))
    def test_conv_time_shift_equivariance(self, d, c, t):
        """Causal conv commutes with right-shift (zero boundary effects aside)."""
        rng = np.random.default_rng(d * 17 + c + t)
        x = np.zeros((1, c, t))
        x[:, :, : t - 1] = rng.standard_normal((1, c, t - 1))
        w = Tensor(rng.standard_normal((2, c, 2)))
        y = conv1d_causal(Tensor(x), w, dilation=d).data
        shifted = np.concatenate([np.zeros((1, c, 1)), x[:, :, :-1]], axis=2)
        y_shifted = conv1d_causal(Tensor(shifted), w, dilation=d).data
        assert np.allclose(y_shifted[:, :, 1:], y[:, :, :-1], atol=1e-10)
