"""Fault-tolerant sweep execution, driven by the deterministic
fault-injection harness (:mod:`repro.testing.faults`).

The contract under test: a failing grid point becomes a
``status="failed"`` :class:`DSEPoint` instead of an exception, transient
failures retry with backoff, hung points time out, dying process-pool
workers are survived (with poison points quarantined), corrupt cache
files are quarantined — and after any amount of injected chaos, a
cache-backed faultless re-run is bit-identical to a sweep that never saw
a fault.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.autograd.graph import CompileConfig
from repro.core import DivergedError, PITConv1d
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import (
    DSECache,
    DSEEngine,
    DSEPoint,
    format_failures,
    pareto_front,
    select_small_medium_large,
)
from repro.evaluation.dse import DSEResult, _failed_point
from repro.nn import CausalConv1d, Module, ReLU, mse_loss
from repro.testing import faults

LAMBDAS = [0.0, 2.0]
WARMUPS = [0, 1]
SCHEDULE = dict(gamma_lr=0.2, max_prune_epochs=2, finetune_epochs=1)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no armed faults and no history."""
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_STATE, raising=False)
    faults.reset()
    yield
    faults.reset()


class Tiny(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c = PITConv1d(1, 2, rf_max=9, rng=rng)
        self.r = ReLU()
        self.h = CausalConv1d(2, 1, 1, rng=rng)

    def forward(self, x):
        return self.h(self.r(self.c(x)))


class CountingFactory:
    """Picklable factory that counts how many seeds it builds."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
        return Tiny()


def _loaders(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((12, 1, 10))
    y = np.concatenate([np.zeros((12, 1, 1)), x[:, :, :-1]], axis=2)
    train = DataLoader(ArrayDataset(x[:8], y[:8]), 4)
    val = DataLoader(ArrayDataset(x[8:], y[8:]), 4)
    return train, val


def _engine(factory=Tiny, **kw):
    train, val = _loaders()
    kw.setdefault("trainer_kwargs", dict(SCHEDULE))
    kw.setdefault("stack", 1)  # the fault accounting below is per-point
    return DSEEngine(factory, mse_loss, train, val, **kw)


def _serial_engine(factory=Tiny, **kw):
    """In-process engine even under REPRO_DSE_WORKERS/-_EXECUTOR (the CI
    fault leg): these tests count factory calls or parent-side warnings,
    which forked pool workers would hide."""
    kw.setdefault("workers", 0)
    kw.setdefault("executor", "thread")
    return _engine(factory, **kw)


def _assert_identical(a: DSEResult, b: DSEResult) -> None:
    assert len(a.points) == len(b.points)
    for pa, pb in zip(a.points, b.points):
        assert (pa.lam, pa.warmup_epochs) == (pb.lam, pb.warmup_epochs)
        assert pa.dilations == pb.dilations
        assert pa.params == pb.params
        assert pa.loss == pb.loss  # bit-identical, not allclose
        assert pa.result is not None and pb.result is not None
        assert pa.result.best_val == pb.result.best_val


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------

class TestSpecParsing:
    def test_full_spec(self):
        spec = "worker_crash@point=3,nan_loss@point=5&times=2,cache_corrupt"
        crash, nan, corrupt = faults.parse_faults(spec)
        assert crash.kind == "worker_crash" and crash.param("point") == 3
        assert crash.times == 1
        assert nan.kind == "nan_loss" and nan.param("point") == 5
        assert nan.times == 2
        assert corrupt.kind == "cache_corrupt" and corrupt.params == ()

    def test_value_coercion(self):
        fault, = faults.parse_faults("hang@seconds=1.5&label=x&point=2")
        assert fault.param("seconds") == 1.5
        assert fault.param("label") == "x"
        assert fault.param("point") == 2
        assert fault.param("missing", "d") == "d"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.parse_faults("worker_carsh@point=1")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="malformed fault param"):
            faults.parse_faults("nan_loss@point")

    def test_empty_tokens_skipped(self):
        assert len(faults.parse_faults("nan_loss, ,transient,")) == 2


class TestFiring:
    def test_fast_path_without_env(self):
        assert faults.fire("nan_loss") is None

    def test_times_bounds_firing(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "transient@times=2")
        assert faults.fire("transient") is not None
        assert faults.fire("transient") is not None
        assert faults.fire("transient") is None  # slots exhausted
        faults.reset()  # in-process history forgotten
        assert faults.fire("transient") is not None

    def test_point_scope_matching(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "transient@point=3")
        assert faults.fire("transient") is None  # no scope, no match
        with faults.point_scope((1, 2)):
            assert faults.fire("transient") is None
        with faults.point_scope((2, 3)):
            assert faults.current_points() == (2, 3)
            assert faults.fire("transient") is not None
        assert faults.current_points() is None  # scope restored

    def test_ctx_param_matching(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "conn_drop@tick=7")
        assert faults.fire("conn_drop", tick=6) is None
        assert faults.fire("conn_drop", tick=7) is not None

    def test_state_dir_claims_survive_reset(self, monkeypatch, tmp_path):
        """With REPRO_FAULTS_STATE set, slots are claim files — the
        cross-process once-only mechanism — so reset() cannot re-arm."""
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_crash@times=2")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path))
        fault = faults.parse_faults("worker_crash@times=2")[0]
        assert faults._claim(fault) and faults._claim(fault)
        assert not faults._claim(fault)
        faults.reset()
        assert not faults._claim(fault)  # claims live on disk
        assert len(list(tmp_path.iterdir())) == 2


# ----------------------------------------------------------------------
# Per-point failure isolation + retries
# ----------------------------------------------------------------------

class TestFailureIsolation:
    def test_nan_loss_becomes_failed_point(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "nan_loss@point=1")
        engine = _engine()
        result = engine.run(LAMBDAS, warmups=[0])
        failed, = result.failed_points
        assert failed.lam == LAMBDAS[1]
        assert "DivergedError" in failed.error
        assert len(result.ok_points) == 1
        assert engine.last_run_stats["failed"] == 1

    def test_selections_skip_failed_points(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "nan_loss@point=0")
        result = _engine().run(LAMBDAS, warmups=[0])
        front = result.pareto()
        assert front and all(p.ok for p in front)
        assert result.best_loss().ok and result.smallest().ok
        chosen = select_small_medium_large(result.points, reference_params=10)
        assert all(p.ok for p in chosen.values())

    def test_all_points_failed(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "nan_loss@times=99")
        result = _engine().run(LAMBDAS, warmups=[0])
        assert len(result.failed_points) == 2
        assert result.pareto() == []
        with pytest.raises(ValueError, match="every grid point failed"):
            result.best_loss()
        with pytest.raises(ValueError, match="every grid point failed"):
            result.smallest()

    def test_transient_fault_retried(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "transient@point=0")
        engine = _engine(retries=1, retry_backoff=0.0)
        result = engine.run(LAMBDAS, warmups=[0])
        assert all(p.ok for p in result.points)
        assert result.points[0].attempts == 2
        assert result.points[1].attempts == 1
        assert engine.last_run_stats["retried"] == 1

    def test_without_retries_transient_fails(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "transient@point=0")
        result = _engine(retries=0).run(LAMBDAS, warmups=[0])
        failed, = result.failed_points
        assert "TransientFault" in failed.error

    def test_diverged_never_retried(self, monkeypatch):
        """Divergence is deterministic (same seed, same data, same NaN);
        retrying would burn the epochs again for the same outcome."""
        monkeypatch.setenv(faults.ENV_FAULTS, "nan_loss@point=0&times=5")
        result = _engine(retries=3, retry_backoff=0.0).run(LAMBDAS,
                                                           warmups=[0])
        failed, = result.failed_points
        assert failed.attempts == 1

    def test_in_process_worker_crash_is_retryable(self, monkeypatch):
        """Thread pools cannot die; worker_crash degrades to a retryable
        InjectedWorkerCrash in-process."""
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_crash@point=0")
        result = _engine(retries=1, retry_backoff=0.0,
                         workers=2, executor="thread").run(LAMBDAS,
                                                           warmups=[0])
        assert all(p.ok for p in result.points)
        assert result.points[0].attempts == 2

    def test_failed_cache_entries_are_retried_on_resume(self, monkeypatch,
                                                        tmp_path):
        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS, "transient@point=0")
        faulted = _serial_engine(cache_path=cache).run(LAMBDAS, warmups=[0])
        assert len(faulted.failed_points) == 1
        with open(cache) as handle:
            recorded = json.load(handle)["points"]
        assert sorted(e["status"] for e in recorded.values()) \
            == ["failed", "ok"]  # the failure is persisted provenance

        monkeypatch.delenv(faults.ENV_FAULTS)
        factory = CountingFactory()
        resumed = _serial_engine(factory, cache_path=cache).run(LAMBDAS,
                                                                warmups=[0])
        assert factory.calls == 1  # only the failed point retrained
        assert all(p.ok for p in resumed.points)
        _assert_identical(_serial_engine().run(LAMBDAS, warmups=[0]), resumed)

    def test_engine_validates_reliability_knobs(self):
        train, val = _loaders()
        with pytest.raises(ValueError, match="retries"):
            DSEEngine(Tiny, mse_loss, train, val, retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            DSEEngine(Tiny, mse_loss, train, val, retry_backoff=-0.1)
        with pytest.raises(ValueError, match="point_timeout"):
            DSEEngine(Tiny, mse_loss, train, val, point_timeout=0.0)

    def test_clean_run_reports_zero_stats(self):
        engine = _engine(workers=2)
        engine.run(LAMBDAS, warmups=[0])
        stats = engine.last_run_stats
        assert stats["pool_deaths"] == 0 and stats["timeouts"] == 0
        assert stats["failed"] == 0 and not stats["degraded"]
        assert stats["quarantined"] == []


class TestTimeouts:
    def test_hung_point_times_out_others_complete(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "hang@point=0&seconds=2.0")
        engine = _engine(workers=2, point_timeout=0.25)
        result = engine.run(LAMBDAS, warmups=[0])
        failed, = result.failed_points
        assert failed.lam == LAMBDAS[0]
        assert "timeout" in failed.error
        assert result.points[1].ok
        assert engine.last_run_stats["timeouts"] == 1


class TestInterrupts:
    def test_interrupt_propagates_and_sweep_resumes(self, monkeypatch,
                                                    tmp_path):
        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS, "interrupt@point=1")
        with pytest.raises(KeyboardInterrupt):
            _serial_engine(cache_path=cache).run(LAMBDAS, warmups=[0])
        with open(cache) as handle:
            recorded = json.load(handle)["points"]
        assert len(recorded) == 1  # the completed point survived

        monkeypatch.delenv(faults.ENV_FAULTS)
        factory = CountingFactory()
        resumed = _serial_engine(factory, cache_path=cache).run(LAMBDAS,
                                                                warmups=[0])
        assert factory.calls == 1
        _assert_identical(_serial_engine().run(LAMBDAS, warmups=[0]), resumed)

    def test_pooled_interrupt_reraises(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_FAULTS, "interrupt@point=0")
        with pytest.raises(KeyboardInterrupt):
            _engine(workers=2, executor="thread").run(LAMBDAS, warmups=[0])


# ----------------------------------------------------------------------
# Worker-crash recovery (real process pools)
# ----------------------------------------------------------------------

class TestWorkerCrashRecovery:
    def test_broken_pool_is_rebuilt_and_sweep_completes(self, monkeypatch,
                                                        tmp_path):
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_crash")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
        os.makedirs(tmp_path / "state")
        engine = _engine(workers=2, executor="process")
        result = engine.run(LAMBDAS, warmups=[0])
        assert all(p.ok for p in result.points)
        assert engine.last_run_stats["pool_deaths"] >= 1

    def test_poison_point_quarantined(self, monkeypatch, tmp_path):
        """A point that kills workers every time must not kill the sweep:
        after QUARANTINE_KILLS solo deaths it is quarantined as failed."""
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_crash@point=0&times=99")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
        os.makedirs(tmp_path / "state")
        engine = _engine(workers=2, executor="process")
        with pytest.warns(UserWarning):
            result = engine.run(LAMBDAS, warmups=[0])
        poison, survivor = result.points
        assert not poison.ok and "quarantined" in poison.error
        assert survivor.ok
        assert (LAMBDAS[0], 0) in engine.last_run_stats["quarantined"]

    def test_repeated_deaths_degrade_to_sequential(self, monkeypatch,
                                                   tmp_path):
        """Past the pool-death budget the engine stops trusting pools and
        finishes the grid in-process (budget pinned to 1 for speed)."""
        monkeypatch.setattr("repro.evaluation.dse.MAX_POOL_DEATHS", 1)
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_crash")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
        os.makedirs(tmp_path / "state")
        engine = _engine(workers=2, executor="process")
        with pytest.warns(UserWarning, match="sequential"):
            result = engine.run(LAMBDAS, warmups=[0])
        assert all(p.ok for p in result.points)
        assert engine.last_run_stats["degraded"] is True

    def test_recovery_claims_worker_flushed_points(self, monkeypatch,
                                                   tmp_path):
        """Workers flush each completed point to the cache; pool-death
        recovery claims those from disk instead of retraining them."""
        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS, "worker_crash")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
        os.makedirs(tmp_path / "state")
        engine = _engine(workers=2, executor="process", cache_path=cache)
        result = engine.run(LAMBDAS, warmups=WARMUPS)
        assert all(p.ok for p in result.points)
        with open(cache) as handle:
            assert len(json.load(handle)["points"]) == len(result.points)


# ----------------------------------------------------------------------
# Cache corruption quarantine
# ----------------------------------------------------------------------

class TestCacheCorruption:
    def _seed_cache(self, path):
        cache = DSECache(path)
        cache.put("k", DSEPoint(lam=0.0, warmup_epochs=0, dilations=(1,),
                                params=1, loss=0.5))

    def test_truncated_file_quarantined(self, tmp_path):
        path = str(tmp_path / "dse.json")
        self._seed_cache(path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])  # killed mid-write
        with pytest.warns(UserWarning, match="corrupt"):
            cache = DSECache(path)
        assert len(cache) == 0  # fresh start
        assert os.path.exists(path + ".corrupt")
        assert not os.path.exists(path)  # moved, not copied
        cache.put("k2", DSEPoint(lam=1.0, warmup_epochs=0, dilations=(1,),
                                 params=1, loss=0.5))
        assert DSECache(path).get("k2") is not None  # healthy again

    def test_garbage_bytes_quarantined(self, tmp_path):
        path = str(tmp_path / "dse.json")
        with open(path, "wb") as handle:
            handle.write(b"\x89PNG\x0d\x0a\x1a\x0a not json \xff\xfe")
        with pytest.warns(UserWarning, match="corrupt"):
            cache = DSECache(path)
        assert len(cache) == 0
        assert os.path.exists(path + ".corrupt")

    def test_non_object_payload_quarantined(self, tmp_path):
        path = str(tmp_path / "dse.json")
        with open(path, "w") as handle:
            handle.write("[1, 2, 3]")
        with pytest.warns(UserWarning, match="corrupt"):
            assert len(DSECache(path)) == 0

    def test_flush_merge_quarantines_corrupt_disk_state(self, tmp_path):
        """The merge-on-flush path hits the same quarantine (it used to
        swallow corrupt files silently); our own points still flush."""
        path = str(tmp_path / "dse.json")
        cache = DSECache(path)
        with open(path, "w") as handle:
            handle.write('{"version": 3, "poin')  # corrupted under us
        with pytest.warns(UserWarning, match="corrupt"):
            cache.put("k", DSEPoint(lam=0.0, warmup_epochs=0,
                                    dilations=(1,), params=1, loss=0.5))
        assert os.path.exists(path + ".corrupt")
        assert DSECache(path).get("k") is not None

    def test_unsupported_version_still_raises(self, tmp_path):
        """A *valid* file from a newer writer is a format mismatch, not
        corruption; quarantining it would discard good points."""
        path = str(tmp_path / "dse.json")
        with open(path, "w") as handle:
            json.dump({"version": 99, "points": {}}, handle)
        with pytest.raises(ValueError, match="cache version"):
            DSECache(path)
        assert os.path.exists(path)  # untouched

    def test_cache_corrupt_fault_end_to_end(self, monkeypatch, tmp_path):
        """Injected mid-sweep corruption: the next flush quarantines and
        rewrites from memory, so the finished sweep still resumes fully."""
        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS, "cache_corrupt")
        with pytest.warns(UserWarning, match="corrupt"):
            first = _serial_engine(cache_path=cache).run(LAMBDAS, warmups=[0])
        assert all(p.ok for p in first.points)
        assert os.path.exists(cache + ".corrupt")
        with open(cache) as handle:
            json.load(handle)  # final file is valid again

        monkeypatch.delenv(faults.ENV_FAULTS)
        factory = CountingFactory()
        resumed = _serial_engine(factory, cache_path=cache).run(LAMBDAS,
                                                                warmups=[0])
        assert factory.calls == 0  # nothing was lost to the corruption
        _assert_identical(first, resumed)


# ----------------------------------------------------------------------
# Chaos parity: the acceptance scenario
# ----------------------------------------------------------------------

class TestChaosParity:
    def test_chaos_sweep_then_faultless_resume_is_bit_identical(
            self, monkeypatch, tmp_path):
        """worker_crash + nan_loss injected into a pooled process sweep:
        run() completes, only the poisoned point fails, and a cache-backed
        faultless re-run is bit-identical to a never-faulted sweep."""
        baseline = _serial_engine().run(LAMBDAS, warmups=WARMUPS)

        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS,
                           "worker_crash@point=0,nan_loss@point=3")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
        os.makedirs(tmp_path / "state")
        engine = _engine(workers=2, executor="process", cache_path=cache)
        chaos = engine.run(LAMBDAS, warmups=WARMUPS)
        assert engine.last_run_stats["pool_deaths"] >= 1
        failed, = chaos.failed_points
        assert (failed.lam, failed.warmup_epochs) == (LAMBDAS[1], WARMUPS[1])
        assert "DivergedError" in failed.error
        assert len(chaos.ok_points) == 3

        monkeypatch.delenv(faults.ENV_FAULTS)
        monkeypatch.delenv(faults.ENV_STATE)
        factory = CountingFactory()
        resumed = _serial_engine(factory, cache_path=cache).run(LAMBDAS,
                                                                warmups=WARMUPS)
        assert factory.calls == 1  # only the poisoned point retrained
        _assert_identical(baseline, resumed)

    def test_resume_parity_composes_with_stack_and_compile(self, monkeypatch,
                                                           tmp_path):
        """Satellite: a fault-killed sweep resumed through the cache stays
        bit-identical under stacked + compiled execution too."""
        cfg = CompileConfig(compile_step=True)
        baseline = _serial_engine(stack=2, compile_config=cfg).run(
            LAMBDAS, warmups=WARMUPS)

        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS, "interrupt@point=2")
        with pytest.raises(KeyboardInterrupt):
            _serial_engine(stack=2, compile_config=cfg,
                           cache_path=cache).run(LAMBDAS, warmups=WARMUPS)

        monkeypatch.delenv(faults.ENV_FAULTS)
        factory = CountingFactory()
        resumed = _serial_engine(factory, stack=2, compile_config=cfg,
                                 cache_path=cache).run(LAMBDAS, warmups=WARMUPS)
        assert factory.calls == 1  # one build for the missing stacked chunk
        _assert_identical(baseline, resumed)


# ----------------------------------------------------------------------
# Mid-epoch crashes: checkpoints resume in-flight points, the cache
# skips finished ones
# ----------------------------------------------------------------------

class TestCrashResumeChaos:
    def test_checkpoint_fault_kinds_parse(self):
        crash, corrupt = faults.parse_faults("crash@epoch=2,ckpt_corrupt")
        assert crash.kind == "crash" and crash.param("epoch") == 2
        assert corrupt.kind == "ckpt_corrupt" and corrupt.params == ()

    def test_sequential_crash_retries_and_resumes(self, monkeypatch,
                                                  tmp_path):
        """In-process, an injected epoch crash surfaces as a transient
        fault; the retry picks up the checkpoint and the final sweep is
        bit-identical to a never-faulted one."""
        baseline = _serial_engine().run(LAMBDAS, warmups=WARMUPS)

        monkeypatch.setenv(faults.ENV_FAULTS, "crash@epoch=2")
        engine = _serial_engine(checkpoint_dir=str(tmp_path / "ckpt"),
                                retries=1, retry_backoff=0.0)
        chaos = engine.run(LAMBDAS, warmups=WARMUPS)
        assert not chaos.failed_points
        assert engine.last_run_stats["retried"] >= 1
        assert engine.last_run_stats["resumed_epochs"] > 0
        _assert_identical(baseline, chaos)

    def test_pooled_crash_kills_worker_and_sweep_resumes(self, monkeypatch,
                                                         tmp_path):
        """Acceptance scenario: a pooled process sweep loses a worker to a
        real mid-epoch death (os._exit); the resubmitted chunk resumes
        from its checkpoint and the result is bit-identical."""
        baseline = _serial_engine().run(LAMBDAS, warmups=WARMUPS)

        monkeypatch.setenv(faults.ENV_FAULTS, "crash@epoch=2")
        monkeypatch.setenv(faults.ENV_STATE, str(tmp_path / "state"))
        os.makedirs(tmp_path / "state")
        engine = _engine(workers=2, executor="process",
                         checkpoint_dir=str(tmp_path / "ckpt"),
                         cache_path=str(tmp_path / "dse.json"))
        chaos = engine.run(LAMBDAS, warmups=WARMUPS)
        assert engine.last_run_stats["pool_deaths"] >= 1
        assert engine.last_run_stats["resumed_epochs"] > 0
        assert not chaos.failed_points
        _assert_identical(baseline, chaos)

    def test_without_checkpoints_crash_restarts_from_scratch(
            self, monkeypatch, tmp_path):
        """No checkpoint_dir: the retry still converges (full retrain),
        but reports zero resumed epochs."""
        baseline = _serial_engine().run(LAMBDAS, warmups=WARMUPS)
        monkeypatch.setenv(faults.ENV_FAULTS, "crash@epoch=2")
        engine = _serial_engine(retries=1, retry_backoff=0.0)
        chaos = engine.run(LAMBDAS, warmups=WARMUPS)
        assert engine.last_run_stats["resumed_epochs"] == 0
        _assert_identical(baseline, chaos)

    def test_single_worker_interrupt_keeps_cache_resumable(
            self, monkeypatch, tmp_path):
        """Satellite: ``workers=1`` takes the pooled path with one worker;
        a KeyboardInterrupt mid-sweep must still leave completed points in
        the cache so the next run only trains what is missing."""
        cache = str(tmp_path / "dse.json")
        monkeypatch.setenv(faults.ENV_FAULTS, "interrupt@point=1")
        with pytest.raises(KeyboardInterrupt):
            _engine(workers=1, executor="thread",
                    cache_path=cache).run(LAMBDAS, warmups=[0])

        monkeypatch.delenv(faults.ENV_FAULTS)
        with open(cache) as handle:
            recorded = json.load(handle)["points"]
        assert len(recorded) >= 1  # finished work survived the interrupt
        factory = CountingFactory()
        resumed = _engine(factory, workers=1, executor="thread",
                          cache_path=cache).run(LAMBDAS, warmups=[0])
        assert factory.calls == 2 - len(recorded)
        _assert_identical(_serial_engine().run(LAMBDAS, warmups=[0]), resumed)

    def test_stacked_divergence_isolated_to_culprit(self, monkeypatch):
        """One NaN slice poisons the whole stacked loss; the chunk falls
        back to per-point training, which blames only the culprit."""
        monkeypatch.setenv(faults.ENV_FAULTS, "nan_loss@point=2&times=2")
        result = _engine(stack=2).run(LAMBDAS, warmups=WARMUPS)
        failed, = result.failed_points
        assert (failed.lam, failed.warmup_epochs) == (LAMBDAS[0], WARMUPS[1])
        assert "DivergedError" in failed.error
        assert len(result.ok_points) == 3


# ----------------------------------------------------------------------
# Failed-point reporting + Pareto hygiene
# ----------------------------------------------------------------------

class TestReportingAndPareto:
    def test_pareto_front_excludes_nan_points(self):
        front = pareto_front([(1.0, 1.0), (float("nan"), 0.0), (2.0, 0.5)])
        assert 1 not in front
        assert set(front) == {0, 2}

    def test_pareto_front_keeps_inf(self):
        assert pareto_front([(1.0, float("inf")), (2.0, 0.5)]) == [0, 1]

    def test_result_pareto_skips_failed(self):
        ok = DSEPoint(lam=0.0, warmup_epochs=0, dilations=(1,), params=5,
                      loss=0.5)
        failed = _failed_point(1.0, 0, RuntimeError("boom"))
        front = DSEResult(points=[ok, failed]).pareto()
        assert front == [ok]

    def test_format_failures_table(self):
        failed = _failed_point(0.5, 3, RuntimeError("boom"), attempts=2)
        table = format_failures([failed])
        assert "RuntimeError: boom" in table
        assert "lambda" in table and "attempts" in table
