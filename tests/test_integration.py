"""Integration tests: full pipelines across modules.

These exercise the paper's claims end-to-end at laptop scale:
seed -> PIT search -> export -> quantize -> GAP8 deployment, plus the
PIT-vs-baseline comparisons.
"""

import numpy as np
import pytest

from repro import PITTrainer, evaluate, export_network, train_plain
from repro.baselines import ProxylessTrainer, proxylessify
from repro.core import pit_layers
from repro.data import (
    DataLoader,
    NottinghamConfig,
    PPGDaliaConfig,
    make_nottingham,
    make_ppg_dalia,
    train_val_test_split,
)
from repro.evaluation import pareto_front
from repro.hw import GAP8Model, deploy, quantize_network
from repro.models import restcn_seed, temponet_seed
from repro.nn import mae_loss, polyphonic_nll


@pytest.fixture(scope="module")
def ppg_loaders():
    cfg = PPGDaliaConfig(num_subjects=2, seconds_per_subject=40)
    ds = make_ppg_dalia(cfg, seed=0)
    train, val, test = train_val_test_split(ds, rng=np.random.default_rng(0))
    return (DataLoader(train, 16, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 16), DataLoader(test, 16))


@pytest.fixture(scope="module")
def music_loaders():
    cfg = NottinghamConfig(num_tunes=12, seq_len=24)
    ds = make_nottingham(cfg, seed=0)
    train, val, test = train_val_test_split(ds, rng=np.random.default_rng(0))
    return (DataLoader(train, 4, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 4), DataLoader(test, 4))


class TestPPGPipeline:
    def test_pit_search_and_deploy(self, ppg_loaders):
        train, val, test = ppg_loaders
        seed = temponet_seed(width_mult=0.125, seed=0)
        trainer = PITTrainer(seed, mae_loss, lam=2e-4, gamma_lr=0.02,
                             warmup_epochs=1, max_prune_epochs=4,
                             prune_patience=4, finetune_epochs=2,
                             finetune_patience=2)
        result = trainer.fit(train, val)
        assert np.isfinite(result.best_val)
        assert len(result.dilations) == 7

        network = export_network(seed)
        report = deploy(network, mae_loss, train, test, (1, 4, 256),
                        name="PIT TEMPONet")
        assert report.params == network.count_parameters()
        assert report.latency_ms > 0
        assert np.isfinite(report.quantized_loss)

    def test_size_pressure_reduces_deployment_cost(self, ppg_loaders):
        """High-λ PIT output must be smaller AND faster than the seed."""
        train, val, _ = ppg_loaders
        gap8 = GAP8Model()

        seed_net = export_network(temponet_seed(width_mult=0.125, seed=0))
        seed_report = gap8.estimate(seed_net, (1, 4, 256))

        searched = temponet_seed(width_mult=0.125, seed=0)
        trainer = PITTrainer(searched, mae_loss, lam=5.0, gamma_lr=0.1,
                             warmup_epochs=0, max_prune_epochs=6,
                             prune_patience=6, finetune_epochs=0)
        result = trainer.fit(train, val)
        pruned_net = export_network(searched)
        pruned_report = gap8.estimate(pruned_net, (1, 4, 256))

        assert pruned_net.count_parameters() < seed_net.count_parameters()
        assert pruned_report.latency_ms < seed_report.latency_ms
        assert max(result.dilations) > 1


class TestMusicPipeline:
    def test_pit_on_restcn(self, music_loaders):
        train, val, _ = music_loaders
        seed = restcn_seed(width_mult=0.04, seed=0)
        trainer = PITTrainer(seed, polyphonic_nll, lam=1e-3, gamma_lr=0.02,
                             warmup_epochs=1, max_prune_epochs=2,
                             prune_patience=2, finetune_epochs=1,
                             finetune_patience=1)
        result = trainer.fit(train, val)
        assert len(result.dilations) == 8
        assert np.isfinite(result.best_val)
        network = export_network(seed)
        out = evaluate(network, polyphonic_nll, val)
        assert out == pytest.approx(result.best_val, rel=0.2)


class TestBaselineComparison:
    def test_pit_and_proxyless_same_space(self, ppg_loaders):
        train, val, _ = ppg_loaders
        pit_seed = temponet_seed(width_mult=0.125, seed=0)
        supernet = proxylessify(pit_seed, rng=np.random.default_rng(0))

        px_trainer = ProxylessTrainer(supernet, mae_loss, lam=0.0,
                                      warmup_epochs=1, max_search_epochs=1,
                                      search_patience=2, finetune_epochs=1,
                                      finetune_patience=1)
        px_result = px_trainer.fit(train, val)
        assert len(px_result.dilations) == 7
        # Every chosen dilation is reachable by PIT's search space.
        for layer, d in zip(pit_layers(pit_seed), px_result.dilations):
            from repro.core import layer_choices
            assert d in layer_choices(layer)

    def test_pit_step_cost_cheaper_than_supernet_storage(self, ppg_loaders):
        """The supernet holds one weight set per branch; PIT holds one."""
        pit_seed = temponet_seed(width_mult=0.125, seed=0)
        supernet = proxylessify(pit_seed, rng=np.random.default_rng(0))
        assert supernet.count_parameters() > pit_seed.count_parameters()


class TestQuantizationPipeline:
    def test_quantized_accuracy_close_to_float(self, ppg_loaders):
        train, val, test = ppg_loaders
        seed = temponet_seed(width_mult=0.125, seed=0)
        network = export_network(seed)
        train_plain(network, mae_loss, train, val, epochs=3, patience=3)
        float_mae = evaluate(network, mae_loss, test)
        quantized = quantize_network(network, train)
        quant_mae = evaluate(quantized, mae_loss, test)
        # int8 PTQ costs at most a few percent on this task.
        assert quant_mae == pytest.approx(float_mae, rel=0.10)


class TestParetoShape:
    def test_lambda_sweep_traces_tradeoff(self, ppg_loaders):
        """A (tiny) λ sweep yields size-diverse points with a valid front."""
        train, val, _ = ppg_loaders
        points = []
        for lam in (0.0, 5.0):
            seed = temponet_seed(width_mult=0.125, seed=0)
            trainer = PITTrainer(seed, mae_loss, lam=lam, gamma_lr=0.1,
                                 warmup_epochs=1, max_prune_epochs=4,
                                 prune_patience=4, finetune_epochs=1,
                                 finetune_patience=1)
            result = trainer.fit(train, val)
            points.append((result.effective_params, result.best_val))
        sizes = [p for p, _ in points]
        assert sizes[1] < sizes[0]  # stronger λ -> smaller model
        assert pareto_front(points)  # front is non-empty/consistent
