"""Perf smoke test: the im2col GEMM backend must not lose to einsum.

Marked ``perf`` and skipped in the tier-1 run; enable with::

    REPRO_RUN_PERF=1 PYTHONPATH=src python -m pytest tests/test_perf_conv_backends.py -q -s

Times a TEMPONet-sized causal conv layer (forward + full backward) under
both backends, asserts the im2col fast path is at least on par with the
einsum reference (with a small noise allowance), and records the raw
timings to ``BENCH_conv_backends.json`` in the repository root.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.autograd import Tensor, conv1d_causal

pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(not os.environ.get("REPRO_RUN_PERF"),
                       reason="perf smoke test; set REPRO_RUN_PERF=1 to run"),
]

# TEMPONet middle-block scale: 32->64 channels, 9 taps, 256 samples.
LAYER = dict(n=16, c_in=32, c_out=64, t=256, k=9, dilation=4)
REPS = 7
WARMUP = 2
# Allowance for scheduler/BLAS noise on a shared machine; im2col wins by
# ~25-30% on this shape, so 1.15x still catches a real regression.
TOLERANCE = 1.15

RESULT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_conv_backends.json")


def _time_backend(backend: str) -> float:
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((LAYER["n"], LAYER["c_in"], LAYER["t"])),
               requires_grad=True)
    w = Tensor(rng.standard_normal((LAYER["c_out"], LAYER["c_in"], LAYER["k"])),
               requires_grad=True)
    b = Tensor(rng.standard_normal(LAYER["c_out"]), requires_grad=True)
    best = float("inf")
    for rep in range(WARMUP + REPS):
        x.grad = w.grad = b.grad = None
        start = time.perf_counter()
        out = conv1d_causal(x, w, b, dilation=LAYER["dilation"],
                            backend=backend)
        out.sum().backward()
        elapsed = time.perf_counter() - start
        if rep >= WARMUP:
            best = min(best, elapsed)
    return best


def test_im2col_not_slower_than_einsum():
    einsum_s = _time_backend("einsum")
    im2col_s = _time_backend("im2col")

    payload = {
        "layer": LAYER,
        "reps": REPS,
        "einsum_seconds": einsum_s,
        "im2col_seconds": im2col_s,
        "speedup": einsum_s / im2col_s,
    }
    with open(os.path.abspath(RESULT_PATH), "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\neinsum {einsum_s * 1e3:.2f} ms  im2col {im2col_s * 1e3:.2f} ms  "
          f"speedup {payload['speedup']:.2f}x")

    assert im2col_s <= einsum_s * TOLERANCE, (
        f"im2col backend regressed: {im2col_s * 1e3:.2f} ms vs "
        f"einsum {einsum_s * 1e3:.2f} ms")
