"""Tests for the DSE driver's warmup axis and front-quality metrics."""

import numpy as np
import pytest

from repro.core import PITConv1d
from repro.data import ArrayDataset, DataLoader
from repro.evaluation import hypervolume_2d, run_dse
from repro.nn import CausalConv1d, Module, ReLU, mse_loss

RNG = np.random.default_rng(83)


class Tiny(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.c = PITConv1d(1, 2, rf_max=9, rng=rng)
        self.r = ReLU()
        self.h = CausalConv1d(2, 1, 1, rng=rng)

    def forward(self, x):
        return self.h(self.r(self.c(x)))


@pytest.fixture(scope="module")
def loaders():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((12, 1, 10))
    y = np.concatenate([np.zeros((12, 1, 1)), x[:, :, :-1]], axis=2)
    train = DataLoader(ArrayDataset(x[:8], y[:8]), 8)
    val = DataLoader(ArrayDataset(x[8:], y[8:]), 4)
    return train, val


class TestWarmupAxis:
    def test_grid_covers_both_dimensions(self, loaders):
        train, val = loaders
        result = run_dse(Tiny, mse_loss, train, val,
                         lambdas=[0.0, 1.0], warmups=[0, 2],
                         trainer_kwargs=dict(max_prune_epochs=1,
                                             finetune_epochs=0))
        combos = {(p.lam, p.warmup_epochs) for p in result.points}
        assert combos == {(0.0, 0), (0.0, 2), (1.0, 0), (1.0, 2)}

    def test_trainer_kwargs_do_not_leak_lam(self, loaders):
        """run_dse strips lam/warmup from trainer_kwargs to avoid clashes."""
        train, val = loaders
        result = run_dse(Tiny, mse_loss, train, val,
                         lambdas=[0.5], warmups=[1],
                         trainer_kwargs=dict(lam=999.0, warmup_epochs=50,
                                             max_prune_epochs=1,
                                             finetune_epochs=0))
        assert result.points[0].lam == 0.5
        assert result.points[0].warmup_epochs == 1

    def test_each_point_carries_full_result(self, loaders):
        train, val = loaders
        result = run_dse(Tiny, mse_loss, train, val, lambdas=[0.0],
                         warmups=[1],
                         trainer_kwargs=dict(max_prune_epochs=1,
                                             finetune_epochs=1))
        point = result.points[0]
        assert point.result is not None
        assert point.result.finetune_epochs == 1


class TestFrontQuality:
    def test_sweep_hypervolume_positive(self, loaders):
        train, val = loaders
        result = run_dse(Tiny, mse_loss, train, val,
                         lambdas=[0.0, 5.0], warmups=[0],
                         trainer_kwargs=dict(gamma_lr=0.2, max_prune_epochs=4,
                                             prune_patience=4,
                                             finetune_epochs=0))
        points = [(float(p.params), p.loss) for p in result.points]
        reference = (max(a for a, _ in points) * 1.1,
                     max(b for _, b in points) * 1.1)
        assert hypervolume_2d(points, reference) > 0

    def test_pareto_subset_of_points(self, loaders):
        train, val = loaders
        result = run_dse(Tiny, mse_loss, train, val,
                         lambdas=[0.0, 5.0], warmups=[0],
                         trainer_kwargs=dict(gamma_lr=0.2, max_prune_epochs=2,
                                             finetune_epochs=0))
        front = result.pareto()
        assert set(id(p) for p in front) <= set(id(p) for p in result.points)
