"""Streaming executor vs full-window inference — the serving parity lock.

The guarantee under test: a *fresh* stream that has consumed samples
``1..t`` emits, at tick ``t``, exactly what full-window inference produces
on those ``t`` samples (zero ring state == causal left zero-padding).  The
grid runs over every registered conv backend × {float64, float32} ×
dilation/stride/pool topologies, so a future backend is held to the
streaming contract automatically, like ``tests/test_backends_parity.py``.

Tolerances follow the substrate: per-tick kernels issue different GEMM
shapes than the full forward, so BLAS may sum in a different order —
observed differences are last-ulp (~1e-14 in float64), not semantic.
Int8-quantized streams are bounded by one activation quantization step
(a half-ulp landing on a rounding boundary can flip one code).
"""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    available_backends,
    default_dtype_scope,
    no_grad,
)
from repro.core.export import network_receptive_field, network_total_stride
from repro.data import ArrayDataset, DataLoader
from repro.hw import FakeQuant, quantize_network
from repro.models import ResTCN, TEMPONet
from repro.nn import (
    AvgPool1d,
    BatchNorm1d,
    CausalConv1d,
    Flatten,
    GlobalAvgPool1d,
    Linear,
    MaxPool1d,
    Module,
    ReLU,
    Sequential,
)
from repro.serving import StreamingExecutor, StreamingUnsupported, stream_module

RNG = np.random.default_rng(123)

TOLS = {
    "float64": dict(atol=1e-12),
    "float32": dict(atol=1e-4, rtol=1e-4),
}

# Tests that do not force a dtype run on the ambient default (CI also runs
# this file under REPRO_DTYPE=float32), so they pick the matching tolerance.
from repro.autograd import get_default_dtype

AMBIENT_TOL = TOLS[np.dtype(get_default_dtype()).name]


def _bn(features, rng):
    """An eval-mode BatchNorm with non-trivial statistics and affine."""
    bn = BatchNorm1d(features)
    bn.running_mean = rng.standard_normal(features) * 0.3
    bn.running_var = 1.0 + np.abs(rng.standard_normal(features))
    bn.weight.data[...] = 1.0 + 0.1 * rng.standard_normal(features)
    bn.bias.data[...] = 0.1 * rng.standard_normal(features)
    return bn


def make_net(topology, backend=None, seed=0):
    """Small nets covering the temporal-layer zoo; returns (net, channels)."""
    rng = np.random.default_rng(seed)
    conv = lambda ci, co, k, **kw: CausalConv1d(ci, co, k, rng=rng,
                                                backend=backend, **kw)
    if topology == "dilated":
        net = Sequential(conv(2, 5, 3, dilation=2), ReLU(),
                         conv(5, 4, 3, dilation=4))
    elif topology == "strided":
        net = Sequential(conv(2, 6, 3, stride=2), _bn(6, rng), ReLU(),
                         conv(6, 4, 3, dilation=2), ReLU(),
                         conv(4, 3, 2, stride=2))
    elif topology == "pooled":
        net = Sequential(conv(2, 6, 5, dilation=2), ReLU(),
                         MaxPool1d(2, 2),
                         conv(6, 4, 3), _bn(4, rng),
                         AvgPool1d(3, 2))
    else:
        raise ValueError(topology)
    net.eval()
    return net, 2


TOPOLOGIES = ("dilated", "strided", "pooled")


def full_forward(net, x):
    with no_grad():
        return net(Tensor(x)).data


def stream_all(executor, x, chunk=1):
    """Push ``(N, C, T)`` through in chunks; concat every emitted frame."""
    outs = []
    for start in range(0, x.shape[2], chunk):
        out = executor.push(x[:, :, start: start + chunk])
        if out.shape[2]:
            outs.append(out)
    if not outs:
        return np.empty((x.shape[0], executor.out_channels, 0))
    return np.concatenate(outs, axis=2)


class TestParityGrid:
    """Full grid: backends × dtypes × topologies, auto-covering future
    backends via available_backends()."""

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("dtype", ("float64", "float32"))
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_stream_matches_full_window(self, backend, dtype, topology):
        with default_dtype_scope(dtype):
            net, channels = make_net(topology, backend=backend)
            x = RNG.standard_normal((2, channels, 23))
            full = full_forward(net, x)
            executor = StreamingExecutor(net, batch=2)
            streamed = stream_all(executor, x)
        assert streamed.shape == full.shape
        assert np.allclose(streamed, full, **TOLS[dtype])

    @pytest.mark.parametrize("backend", available_backends())
    def test_quantized_stream_within_one_level(self, backend):
        net, channels = make_net("dilated", backend=backend)
        data = ArrayDataset(RNG.standard_normal((8, channels, 23)),
                            RNG.standard_normal((8, 1)))
        quantized = quantize_network(net, DataLoader(data, 4))
        x = RNG.standard_normal((2, channels, 23))
        full = full_forward(quantized, x)
        streamed = stream_all(StreamingExecutor(quantized, batch=2), x)
        # A last-ulp difference on a rounding boundary can flip one int8
        # code; bound the error by one quantization step of the output
        # fake-quant grid.
        fqs = [m for m in quantized.modules() if isinstance(m, FakeQuant)]
        step = max((float(m.hi) - float(m.lo)) / (2 ** m.bits - 1)
                   for m in fqs)
        assert streamed.shape == full.shape
        assert np.abs(streamed - full).max() <= step + 1e-9

    def test_chunked_push_is_bitwise_identical(self):
        net, channels = make_net("pooled")
        x = RNG.standard_normal((2, channels, 24))
        per_sample = stream_all(StreamingExecutor(net, batch=2), x, chunk=1)
        for chunk in (3, 7, 24):
            chunked = stream_all(StreamingExecutor(net, batch=2), x,
                                 chunk=chunk)
            assert np.array_equal(per_sample, chunked)

    def test_reset_makes_streams_repeatable(self):
        net, channels = make_net("strided")
        executor = StreamingExecutor(net, batch=1)
        x = RNG.standard_normal((1, channels, 17))
        first = stream_all(executor, x)
        executor.reset()
        assert executor.ticks == 0
        again = stream_all(executor, x)
        assert np.array_equal(first, again)


class TestModels:
    """The paper's exported networks stream."""

    def test_temponet_first_window(self):
        model = TEMPONet(width_mult=0.5, dropout=0.0,
                         rng=np.random.default_rng(5)).eval()
        executor = StreamingExecutor(model, batch=2)
        assert executor.warmup_ticks == model.input_length == 256
        assert executor.period == network_total_stride(model) == 16
        x = RNG.standard_normal((2, 4, 256))
        full = full_forward(model, x)
        streamed = stream_all(executor, x, chunk=16)
        # Exactly one frame inside the first window; it equals full-window
        # inference on the 256 samples seen so far.
        assert streamed.shape == (2, full.shape[1], 1)
        assert np.allclose(streamed[:, :, 0], full, **AMBIENT_TOL)

    def test_temponet_keeps_emitting_every_period(self):
        model = TEMPONet(width_mult=0.25, dropout=0.0,
                         rng=np.random.default_rng(6)).eval()
        executor = StreamingExecutor(model, batch=1)
        x = RNG.standard_normal((1, 4, 256 + 3 * 16))
        streamed = stream_all(executor, x, chunk=16)
        assert streamed.shape[2] == 4  # tick 256, 272, 288, 304

    def test_restcn_every_tick(self):
        model = ResTCN(width_mult=0.1, dropout=0.0,
                       rng=np.random.default_rng(7)).eval()
        executor = StreamingExecutor(model, batch=1)
        assert executor.warmup_ticks == 1
        assert executor.period == 1
        assert executor.receptive_field == model.receptive_field
        x = RNG.standard_normal((1, 88, 40))
        full = full_forward(model, x)
        streamed = stream_all(executor, x, chunk=5)
        assert streamed.shape == full.shape
        assert np.allclose(streamed, full, **AMBIENT_TOL)


class TestWindowHeads:
    """GlobalAvgPool / Flatten heads stream as sliding windows sized by the
    shape probe."""

    def test_gap_head(self):
        rng = np.random.default_rng(8)
        net = Sequential(CausalConv1d(2, 5, 3, dilation=2, rng=rng), ReLU(),
                         GlobalAvgPool1d(), Linear(5, 3, rng=rng)).eval()
        executor = StreamingExecutor(net, input_length=12)
        assert executor.warmup_ticks == 12
        x = RNG.standard_normal((1, 2, 12))
        full = full_forward(net, x)
        streamed = stream_all(executor, x)
        assert streamed.shape[2] == 1
        assert np.allclose(streamed[:, :, 0], full, **AMBIENT_TOL)

    def test_flatten_head(self):
        rng = np.random.default_rng(9)
        net = Sequential(CausalConv1d(2, 3, 3, rng=rng), ReLU(),
                         MaxPool1d(2, 2), Flatten(),
                         Linear(3 * 4, 4, rng=rng)).eval()
        executor = StreamingExecutor(net, input_length=8)
        assert executor.warmup_ticks == 8
        assert executor.period == 2  # pool stride
        x = RNG.standard_normal((1, 2, 8))
        full = full_forward(net, x)
        streamed = stream_all(executor, x)
        assert streamed.shape[2] == 1
        assert np.allclose(streamed[:, :, 0], full, **AMBIENT_TOL)


class TestExecutorContract:
    def test_metadata_matches_export_helpers(self):
        net, _ = make_net("pooled")
        executor = StreamingExecutor(net)
        assert executor.receptive_field == network_receptive_field(net)
        assert executor.total_stride == network_total_stride(net)

    def test_state_bytes_positive_and_scales_with_batch(self):
        net, _ = make_net("dilated")
        one = StreamingExecutor(net, batch=1).state_bytes()
        four = StreamingExecutor(net, batch=4).state_bytes()
        assert one > 0
        assert four == 4 * one

    def test_push_validates_shape(self):
        net, channels = make_net("dilated")
        executor = StreamingExecutor(net, batch=2)
        with pytest.raises(ValueError, match="expected"):
            executor.push(np.zeros((1, channels, 1)))
        with pytest.raises(ValueError, match="expected"):
            executor.push(np.zeros((2, channels + 1, 1)))
        with pytest.raises(ValueError):
            executor.push(np.zeros((2, channels)))

    def test_batch_validation(self):
        net, _ = make_net("dilated")
        with pytest.raises(ValueError, match="batch"):
            StreamingExecutor(net, batch=0)

    def test_reset_slots_equals_fresh_stream_when_aligned(self):
        net, channels = make_net("strided")
        stride = network_total_stride(net)
        executor = StreamingExecutor(net, batch=3)
        warm = RNG.standard_normal((3, channels, 4 * stride))
        stream_all(executor, warm)  # aligned: ticks % stride == 0
        executor.reset_slots([1])
        fresh = StreamingExecutor(net, batch=1)
        x = RNG.standard_normal((1, channels, 3 * stride))
        batch = np.concatenate([warm[:1, :, : x.shape[2]], x,
                                warm[2:, :, : x.shape[2]]], axis=0)
        got = stream_all(executor, batch)[1]
        want = stream_all(fresh, x)[0]
        assert np.allclose(got, want, **AMBIENT_TOL)

    def test_original_model_is_not_mutated(self):
        net, channels = make_net("dilated")
        before = net[0].weight.data.copy()
        executor = StreamingExecutor(net)
        stream_all(executor, RNG.standard_normal((1, channels, 9)))
        assert np.array_equal(net[0].weight.data, before)
        assert net[0].weight.data is not None


class TestUnsupported:
    def test_calibrating_fakequant_rejected(self):
        rng = np.random.default_rng(0)
        net = Sequential(CausalConv1d(2, 3, 3, rng=rng), FakeQuant())
        with pytest.raises(StreamingUnsupported, match="calibrat"):
            StreamingExecutor(net, input_length=8)

    def test_unknown_parametric_module_rejected(self):
        class Mystery(Module):
            def __init__(self):
                super().__init__()
                from repro.nn.module import Parameter
                self.weight = Parameter(np.ones(3))

            def forward(self, x):
                return x

        net = Sequential(CausalConv1d(2, 3, 3,
                                      rng=np.random.default_rng(0)),
                         Mystery())
        with pytest.raises(StreamingUnsupported):
            StreamingExecutor(net, input_length=8)

    def test_pit_conv_without_export_rejected(self):
        # Reaching the factory with a live supernet layer is a bug; the
        # executor avoids it by auto-exporting (next test).
        from repro.core import PITConv1d
        from repro.serving.streaming import StreamContext
        layer = PITConv1d(2, 3, rf_max=9, rng=np.random.default_rng(0))
        with pytest.raises(StreamingUnsupported, match="export"):
            stream_module(layer, StreamContext(batch=1, backend=None,
                                               shapes={}))

    def test_searchable_model_is_auto_exported(self):
        from repro.core import PITConv1d
        from repro.core.export import export_network
        net = Sequential(PITConv1d(2, 3, rf_max=5,
                                   rng=np.random.default_rng(0)),
                         ReLU()).eval()
        x = RNG.standard_normal((1, 2, 11))
        full = full_forward(export_network(net).eval(), x)
        streamed = stream_all(StreamingExecutor(net, input_length=11), x)
        assert streamed.shape == full.shape
        assert np.allclose(streamed, full, **AMBIENT_TOL)
