"""Unit + differential tests for the codegen (generated-source) executor.

The lowering pass turns an optimized ``GraphProgram`` into one specialized
Python function — slots become locals, kernels become closure-bound calls,
the backward schedule is unrolled in source order.  These tests lock:

* knob resolution (``graph_exec`` / ``REPRO_GRAPH_EXEC``);
* the generated source's *shape* — no dict dispatch, no kwargs re-lookup,
  no interpreter loop in the hot path;
* bit-parity with the interpreted replay on models the module-wide legs in
  ``test_graph_executor.py`` don't cover verbatim (three-phase PIT with
  ``graph_exec`` plumbed through the trainer, stacked training);
* the process-wide source→code cache (retraces and same-architecture DSE
  points compile once);
* the automatic interp fallback on lowering failure;
* ``dump_source``/``diagnostics`` introspection and zero steady-state
  allocation under source replay.
"""

import copy
import json
import os
import time

import numpy as np
import pytest

import repro

from repro.autograd import Tensor, set_default_dtype
from repro.autograd.graph import (
    ENV_GRAPH_EXEC,
    CompiledStep,
    LoweringError,
    graph_exec_default,
    resolve_graph_exec,
)
from repro.autograd.graph import codegen
from repro.core import PITTrainer, size_regularizer
from repro.core.stacked import StackedPITTrainer
from repro.core.trainer import make_training_step, train_plain
from repro.data import ArrayDataset, DataLoader, clone_loader
from repro.models import temponet_seed
from repro.nn import (
    BatchNorm1d,
    CausalConv1d,
    GlobalAvgPool1d,
    Linear,
    ReLU,
    Sequential,
    mae_loss,
    mse_loss,
)
from repro.optim import Adam


def small_model(seed=7):
    rng = np.random.default_rng(seed)
    return Sequential(
        CausalConv1d(3, 6, kernel_size=5, dilation=2, rng=rng),
        BatchNorm1d(6), ReLU(),
        CausalConv1d(6, 4, kernel_size=3, rng=rng),
        GlobalAvgPool1d(), Linear(4, 2, rng=rng))


def batches_of(xshape, yshape, count=4, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.standard_normal(xshape), rng.standard_normal(yshape))
            for _ in range(count)]


def train_steps(make_model, batches, graph_exec, loss_fn=mse_loss):
    """Train one model with a compiled step; return (losses, state, grads, step)."""
    model = make_model()
    step = make_training_step(model, loss_fn, compile_step=True,
                              graph_exec=graph_exec)
    optimizer = Adam(model.parameters(), lr=1e-3)
    losses = []
    for x, y in batches:
        model.train()
        optimizer.zero_grad()
        losses.append(step(x, y))
        optimizer.step()
    grads = {name: np.array(p.grad) for name, p in model.named_parameters()
             if p.grad is not None}
    return losses, model.state_dict(), grads, step


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------

class TestKnobs:
    def test_default_is_interp(self, monkeypatch):
        monkeypatch.delenv(ENV_GRAPH_EXEC, raising=False)
        assert graph_exec_default() == "interp"
        assert resolve_graph_exec(None) == "interp"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_GRAPH_EXEC, "source")
        assert resolve_graph_exec(None) == "source"
        # An explicit argument beats the environment.
        assert resolve_graph_exec("interp") == "interp"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="graph executor"):
            resolve_graph_exec("jit")
        with pytest.raises(ValueError):
            CompiledStep(lambda x, y: x, graph_exec="llvm")

    def test_env_reaches_compiled_step(self, monkeypatch):
        monkeypatch.setenv(ENV_GRAPH_EXEC, "source")
        step = CompiledStep(lambda x, y: x)
        assert step.graph_exec == "source"


# ----------------------------------------------------------------------
# Generated-source shape: the dispatch overhead must actually be gone
# ----------------------------------------------------------------------

class TestGeneratedSource:
    def _source(self):
        model = small_model()
        model.train()  # BatchNorm must record its running-stats effect
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_exec="source")
        x, y = batches_of((4, 3, 32), (4, 2), count=1)[0]
        step(x, y)
        sources = step.dump_source()
        assert len(sources) == 1
        return next(iter(sources.values()))

    def test_no_dict_dispatch_in_hot_path(self):
        """The whole point of lowering: no per-node dispatch machinery.

        The generated function must not re-enter the eager dispatcher
        (``apply_op``), index a slot table (``values[``), walk a plan
        (``for`` over nodes), or rebuild kwargs per call (``**``).
        """
        source = self._source()
        body = source[source.index("def run(inputs):"):]
        assert "apply_op" not in body
        assert "values[" not in body
        assert "self." not in body
        assert "**" not in body
        for line in body.splitlines():
            stripped = line.strip()
            assert not stripped.startswith("for "), line
            assert not stripped.startswith("while "), line

    def test_source_is_compilable_standalone(self):
        """The text is pure structure: it must compile with no context."""
        source = self._source()
        compile(source, "<dump>", "exec")

    def test_effects_emitted_in_place(self):
        """BatchNorm's running-stats update appears in the forward sweep."""
        import re
        source = self._source()
        body = source[source.index("def run(inputs):"):]
        # Effect callbacks are closure-bound e<i> calls in schedule order.
        assert re.search(r"\be\d+\(v\d+", body), body

    def test_dump_source_and_cli_registry_agree(self):
        codegen.clear_code_cache()
        source = self._source()
        recorded = codegen.recorded_sources()
        assert source in recorded.values()


# ----------------------------------------------------------------------
# Bit-parity with the interpreted replay
# ----------------------------------------------------------------------

class TestParity:
    def test_training_run_bit_identical(self):
        batches = batches_of((4, 3, 32), (4, 2))
        interp = train_steps(small_model, batches, "interp")
        source = train_steps(small_model, batches, "source")
        assert interp[0] == source[0]
        for key in interp[1]:
            assert np.array_equal(interp[1][key], source[1][key]), key
        for key in interp[2]:
            assert np.array_equal(interp[2][key], source[2][key]), key
        assert source[3].executors and all(
            mode == "source" for mode in source[3].executors.values())

    def test_float32_parity(self):
        set_default_dtype("float32")
        try:
            batches = batches_of((4, 3, 32), (4, 2))
            interp = train_steps(small_model, batches, "interp")
            source = train_steps(small_model, batches, "source")
            assert interp[0] == source[0]
            for key in interp[1]:
                assert np.array_equal(interp[1][key], source[1][key]), key
        finally:
            set_default_dtype("float64")

    def test_three_phase_pit_bit_identical(self):
        outcomes = {}
        for graph_exec in ("interp", "source"):
            rng = np.random.default_rng(0)
            data = ArrayDataset(rng.standard_normal((24, 4, 256)),
                                rng.standard_normal((24, 1)))
            train = DataLoader(data, 8, shuffle=True,
                               rng=np.random.default_rng(1))
            val = DataLoader(data, 8)
            model = temponet_seed(width_mult=0.125, seed=3)
            trainer = PITTrainer(model, mae_loss, lam=0.5, gamma_lr=0.1,
                                 warmup_epochs=1, max_prune_epochs=2,
                                 prune_patience=2, finetune_epochs=1,
                                 finetune_patience=1, compile_step=True,
                                 graph_exec=graph_exec)
            outcomes[graph_exec] = (trainer.fit(train, val),
                                    model.state_dict())
        base, src = outcomes["interp"], outcomes["source"]
        assert base[0].dilations == src[0].dilations
        assert base[0].best_val == src[0].best_val
        assert base[0].history == src[0].history
        for key in base[1]:
            assert np.array_equal(base[1][key], src[1][key]), key
        # The trainer surfaced per-phase diagnostics for both runs.
        assert set(src[0].compile_stats) == {"warmup", "prune", "finetune"}
        assert all(stats["graph_exec"] == "source"
                   for stats in src[0].compile_stats.values())

    def test_stacked_training_bit_identical(self):
        """Same stacked program, both executors: results must be bit-equal
        (this is executor-vs-executor, not stacked-vs-sequential, so no
        reduction-order tolerance applies)."""
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.standard_normal((24, 4, 256)),
                            rng.standard_normal((24, 1)))
        outcomes = {}
        for graph_exec in ("interp", "source"):
            train = DataLoader(data, 8, shuffle=True,
                               rng=np.random.default_rng(1))
            val = DataLoader(data, 8)
            trainer = StackedPITTrainer(
                temponet_seed(width_mult=0.125, seed=3), mae_loss,
                lams=[0.0, 0.5], warmup_epochs=1, max_prune_epochs=2,
                prune_patience=2, finetune_epochs=1, finetune_patience=1,
                compile_step=True, graph_exec=graph_exec)
            outcomes[graph_exec] = trainer.fit(train, val)
        for seq, src in zip(outcomes["interp"], outcomes["source"]):
            assert seq.dilations == src.dilations
            assert seq.best_val == src.best_val
            assert seq.history == src.history

    def test_short_final_batch_retraces_and_matches(self):
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.standard_normal((10, 3, 32)),
                            rng.standard_normal((10, 2)))
        loader = DataLoader(data, 4)  # batches of 4, 4, 2
        eager_model = small_model()
        source_model = copy.deepcopy(eager_model)
        eager = make_training_step(eager_model, mse_loss, compile_step=False)
        source = make_training_step(source_model, mse_loss,
                                    compile_step=True, graph_exec="source")
        for _ in range(2):
            for x, y in loader:
                eager_model.zero_grad()
                source_model.zero_grad()
                assert source(x, y) == eager(x, y)
        assert sorted(mode for mode in source.executors.values()) \
            == ["source", "source"]


# ----------------------------------------------------------------------
# The process-wide source→code cache
# ----------------------------------------------------------------------

class TestCodeCache:
    def test_same_architecture_compiles_once(self):
        """Structurally identical programs (same architecture, fresh
        weights — i.e. DSE points within a worker) share one compiled code
        object: the second step is a pure cache hit."""
        codegen.clear_code_cache()
        x, y = batches_of((4, 3, 32), (4, 2), count=1)[0]
        for seed in (1, 2):
            step = make_training_step(small_model(seed), mse_loss,
                                      compile_step=True, graph_exec="source")
            step(x, y)
        stats = codegen.codegen_cache_stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_retrace_shares_code_across_shapes(self):
        """A short-final-batch retrace re-lowers but re-uses the compiled
        artifact: source text encodes structure, not shapes."""
        codegen.clear_code_cache()
        model = small_model()
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_exec="source")
        rng = np.random.default_rng(0)
        step(rng.standard_normal((4, 3, 32)), rng.standard_normal((4, 2)))
        step(rng.standard_normal((2, 3, 32)), rng.standard_normal((2, 2)))
        stats = codegen.codegen_cache_stats()
        assert len(step.compiled_shapes) == 2
        assert stats["entries"] == 1
        assert stats["hits"] == 1

    def test_dtype_flip_retraces(self):
        """A set_default_dtype switch must re-trace, not replay the stale
        program (the retrace-cache key carries the dtype)."""
        model = small_model()
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_exec="source")
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((4, 3, 32)), rng.standard_normal((4, 2))
        step(x, y)
        set_default_dtype("float32")
        try:
            model.zero_grad()
            step(x, y)
            assert len(step.compiled_shapes) == 2
            dtypes = {key[2] for key in step.compiled_shapes}
            assert dtypes == {np.float64, np.float32}
        finally:
            set_default_dtype("float64")


# ----------------------------------------------------------------------
# Lowering failure → interp fallback (never break training)
# ----------------------------------------------------------------------

class TestLoweringFallback:
    def test_emit_failure_falls_back_to_interp(self, monkeypatch):
        def explode(runner):
            raise LoweringError("synthetic lowering failure")

        monkeypatch.setattr(codegen, "_emit", explode)
        batches = batches_of((4, 3, 32), (4, 2))
        interp = train_steps(small_model, batches, "interp")
        degraded = train_steps(small_model, batches, "source")
        # Bit-identical results — the step silently ran interpreted...
        assert interp[0] == degraded[0]
        step = degraded[3]
        assert all(mode == "interp" for mode in step.executors.values())
        # ...and the reason is on the record, per program.
        assert step.exec_fallbacks
        assert "synthetic lowering failure" in next(
            iter(step.exec_fallbacks.values()))
        assert step.diagnostics()["exec_fallbacks"]

    def test_interp_mode_never_lowers(self, monkeypatch):
        def explode(runner):  # pragma: no cover - must not be reached
            raise AssertionError("interp mode invoked the lowering pass")

        monkeypatch.setattr(codegen, "_emit", explode)
        step = make_training_step(small_model(), mse_loss,
                                  compile_step=True, graph_exec="interp")
        x, y = batches_of((4, 3, 32), (4, 2), count=1)[0]
        step(x, y)
        assert not step.dump_source()


# ----------------------------------------------------------------------
# Allocation discipline under source replay
# ----------------------------------------------------------------------

class TestAllocStats:
    def test_zero_steady_state_growth(self):
        model = small_model()
        step = make_training_step(model, mse_loss, compile_step=True,
                                  graph_exec="source")
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((4, 3, 32)), rng.standard_normal((4, 2))
        step(x, y)          # trace + lower
        step(x, y)          # warm replay (materializes lazy scratch)
        warm = step.alloc_stats
        for _ in range(5):
            model.zero_grad()
            step(x, y)
        steady = step.alloc_stats
        assert steady["steady_state_growth"] == 0
        assert steady["persistent_buffers"] == warm["persistent_buffers"]

    def test_train_plain_surfaces_diagnostics(self):
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.standard_normal((16, 3, 32)),
                            rng.standard_normal((16, 2)))
        train = DataLoader(data, 4, shuffle=True,
                           rng=np.random.default_rng(1))
        val = DataLoader(data, 4)
        result = train_plain(small_model(), mse_loss, train, val, epochs=2,
                             patience=2, compile_step=True,
                             graph_exec="source")
        stats = result.compile_stats
        assert stats is not None
        assert stats["graph_exec"] == "source"
        assert all(mode == "source" for mode in stats["executors"].values())
        assert stats["alloc_stats"]["persistent_buffers"] > 0
        # diagnostics() must stay JSON-able (DSE results pickle/serialize).
        import json
        json.dumps(stats)

        eager = train_plain(small_model(), mse_loss, clone_loader(train),
                            clone_loader(val), epochs=2, patience=2,
                            compile_step=False)
        assert eager.compile_stats is None


# ----------------------------------------------------------------------
# Perf smoke (env-gated): records BENCH_codegen.json
# ----------------------------------------------------------------------

PERF_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..",
                                "BENCH_codegen.json")
# Every row times the two executors of the *same* optimized program
# (``optimize="default"`` on both sides), so the ratio isolates exactly
# what source lowering removes: the interpreter's plan-tuple loop and the
# FusedOp wrapper's sub-op machinery.  The headline row is the
# dispatch-bound regime this executor targets — per-sample latency and
# small-batch DSE probing, where kernels are cheap and the per-node
# machinery is the bottleneck.  Wide heavy-batch rows are kernel-bound;
# they only assert the source executor never loses.
# Headline config first: it runs before sustained load heats the machine
# into thermal throttling, which would otherwise skew its clock envelope.
PERF_CONFIGS = [
    ("float32", "im2col", 0.1, 1),    # headline: dispatch-bound
    ("float32", "im2col", 0.25, 4),   # the interpreter bench's headline shape
    ("float64", "im2col", 0.25, 16),  # kernel-bound
]
PERF_ASSERT_CONFIG = ("float32", "im2col", 0.1, 1)
PERF_TARGET_SPEEDUP = 1.15  # source over interp on the headline row
PERF_FLOOR_SPEEDUP = 1.0    # source over interp on every row
REPS = 25
WARMUP = 3


def _time_interleaved(steps, models, x, y):
    """Min-of-reps per step, measured round-robin (PR 4 methodology).

    Interleaving is load-bearing: timing one variant to completion before
    the next lets CPU frequency drift (turbo decay, thermal throttling)
    masquerade as a speedup or regression of whichever ran later.
    Round-robin exposes every variant to the same clock envelope.
    """
    best = [float("inf")] * len(steps)
    for rep in range(WARMUP + REPS):
        for i, step in enumerate(steps):
            models[i].zero_grad()
            start = time.perf_counter()
            step(x, y)
            elapsed = time.perf_counter() - start
            if rep >= WARMUP:
                best[i] = min(best[i], elapsed)
    return best


def _assert_zero_alloc(step, model, x, y):
    step(x, y)              # warm replay (materializes lazy scratch)
    step.alloc_stats
    for _ in range(3):
        model.zero_grad()
        step(x, y)
    alloc = step.alloc_stats
    assert alloc["steady_state_growth"] == 0, alloc
    return alloc


@pytest.mark.perf
@pytest.mark.skipif(not os.environ.get("REPRO_RUN_PERF"),
                    reason="perf smoke test; set REPRO_RUN_PERF=1 to run")
def test_codegen_executor_speedup():
    rows = []
    try:
        for dtype, backend, width, batch in PERF_CONFIGS:
            set_default_dtype(dtype)
            rng = np.random.default_rng(0)
            x = rng.standard_normal((batch, 4, 256))
            y = rng.standard_normal((batch, 1))
            model = temponet_seed(width_mult=width, seed=3)

            def step_fn(tx, ty, model=model):
                task = mae_loss(model(tx), ty)
                return task + size_regularizer(model, 0.02), task

            with repro.use_backend(backend):
                interp = CompiledStep(step_fn, optimize="default",
                                      graph_exec="interp")
                source = CompiledStep(step_fn, optimize="default",
                                      graph_exec="source")
                interp(x, y)
                source(x, y)
                assert interp.fallback_reason is None
                assert not source.exec_fallbacks, source.exec_fallbacks
                alloc = _assert_zero_alloc(source, model, x, y)
                interp_s, source_s = _time_interleaved(
                    [interp, source], [model, model], x, y)
            rows.append({
                "row": "pit-step", "dtype": dtype, "backend": backend,
                "width": width, "batch": batch,
                "model": f"temponet width={width} T=256",
                "interp_seconds": interp_s, "source_seconds": source_s,
                "speedup": interp_s / source_s,
                "alloc_stats": alloc,
            })
            print(f"\n{dtype} {backend} w{width} b{batch}: "
                  f"interp {interp_s * 1e3:.2f} ms  "
                  f"source {source_s * 1e3:.2f} ms "
                  f"({interp_s / source_s:.2f}x)")

        # Stacked row: the vmap-style multi-λ step (M grid points fused into
        # one program) through both executors.
        set_default_dtype("float32")
        rng = np.random.default_rng(0)
        trainers = []
        for mode in ("interp", "source"):
            model = temponet_seed(width_mult=0.25, seed=3)
            trainers.append(StackedPITTrainer(
                model, mse_loss, lams=[0.0, 0.25, 0.5, 1.0],
                compile_step=True, graph_opt="default", graph_exec=mode))
        m = trainers[0].m
        x = rng.standard_normal((m, 4, 4, 256)).astype(np.float32)
        y = rng.standard_normal((m, 4, 1)).astype(np.float32)
        with repro.use_backend("im2col"):
            steps = [tr._make_step(True) for tr in trainers]
            for tr, step in zip(trainers, steps):
                step(x, y)
            assert not steps[1].exec_fallbacks, steps[1].exec_fallbacks
            alloc = _assert_zero_alloc(steps[1], trainers[1].stacked, x, y)
            interp_s, source_s = _time_interleaved(
                steps, [tr.stacked for tr in trainers], x, y)
        rows.append({
            "row": "stacked-step", "dtype": "float32", "backend": "im2col",
            "width": 0.25, "batch": 4,
            "model": f"stacked temponet width=0.25 T=256 M={m}",
            "interp_seconds": interp_s, "source_seconds": source_s,
            "speedup": interp_s / source_s,
            "alloc_stats": alloc,
        })
        print(f"\nstacked float32 im2col M={m} b4: "
              f"interp {interp_s * 1e3:.2f} ms  "
              f"source {source_s * 1e3:.2f} ms "
              f"({interp_s / source_s:.2f}x)")
    finally:
        set_default_dtype("float64")

    payload = {"reps": REPS, "timing": "interleaved min-of-reps",
               "compares": "graph_exec=interp vs graph_exec=source, both "
                           "optimize=default",
               "step": "PIT pruning step (task + size reg)", "rows": rows}
    with open(os.path.abspath(PERF_RESULT_PATH), "w") as handle:
        json.dump(payload, handle, indent=2)

    for row in rows:
        assert row["speedup"] >= PERF_FLOOR_SPEEDUP, (
            f"source executor slower than interp on {row['row']} "
            f"{row['dtype']}/{row['backend']}/w{row['width']}"
            f"/b{row['batch']}: {row['speedup']:.2f}x")
    headline = next(r for r in rows
                    if (r["dtype"], r["backend"], r["width"], r["batch"])
                    == PERF_ASSERT_CONFIG and r["row"] == "pit-step")
    assert headline["speedup"] >= PERF_TARGET_SPEEDUP, (
        f"codegen executor speedup regressed: "
        f"{headline['speedup']:.2f}x < {PERF_TARGET_SPEEDUP}x "
        f"({headline['interp_seconds'] * 1e3:.2f} ms vs "
        f"{headline['source_seconds'] * 1e3:.2f} ms)")
