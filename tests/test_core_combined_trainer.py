"""Integration tests: PITTrainer driving the combined time+channel search."""

import numpy as np
import pytest

from repro.core import (
    PITChannelConv1d,
    PITTrainer,
    channel_layers,
    effective_parameters,
    flops_regularizer,
    size_regularizer,
)
from repro.data import ArrayDataset, DataLoader
from repro.nn import CausalConv1d, Module, ReLU, mse_loss

RNG = np.random.default_rng(31)


class CombinedTCN(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.c1 = PITChannelConv1d(1, 6, rf_max=9, rng=rng)
        self.r1 = ReLU()
        self.c2 = PITChannelConv1d(6, 6, rf_max=9, min_channels=2, rng=rng)
        self.r2 = ReLU()
        self.head = CausalConv1d(6, 1, kernel_size=1, rng=rng)

    def forward(self, x):
        return self.head(self.r2(self.c2(self.r1(self.c1(x)))))


def make_loaders(n=16, t=12, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, t))
    y = np.concatenate([np.zeros((n, 1, 1)), x[:, :, :-1]], axis=2)
    train = ArrayDataset(x[: n // 2], y[: n // 2])
    val = ArrayDataset(x[n // 2:], y[n // 2:])
    return (DataLoader(train, 8, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 8))


class TestRegularizersCoverCombinedLayers:
    def test_size_regularizer_includes_time_masks(self):
        model = CombinedTCN()
        value = size_regularizer(model, 1.0).item()
        from repro.core import gamma_size_coefficients
        expected = (1 * 6 + 6 * 6) * sum(gamma_size_coefficients(9))
        assert value == pytest.approx(expected)

    def test_flops_regularizer_includes_time_masks(self):
        model = CombinedTCN()
        from repro.autograd import Tensor
        model(Tensor(RNG.standard_normal((1, 1, 10))))
        assert flops_regularizer(model, 1.0).item() > 0

    def test_gradients_reach_combined_time_gamma(self):
        model = CombinedTCN()
        size_regularizer(model, 1.0).backward()
        assert model.c1.time_mask.gamma_hat.grad is not None


class TestTrainerOnCombinedModel:
    def test_trainer_accepts_combined_model(self):
        train, val = make_loaders()
        trainer = PITTrainer(CombinedTCN(), mse_loss, lam=0.0,
                             warmup_epochs=1, max_prune_epochs=1,
                             finetune_epochs=1)
        result = trainer.fit(train, val)
        assert len(result.dilations) == 2

    def test_combined_search_prunes_both_axes(self):
        train, val = make_loaders()
        model = CombinedTCN(seed=1)
        trainer = PITTrainer(model, mse_loss, lam=5.0, channel_lam=5.0,
                             gamma_lr=0.1, warmup_epochs=0,
                             max_prune_epochs=20, prune_patience=20,
                             finetune_epochs=0)
        trainer.fit(train, val)
        assert model.c1.current_dilation() > 1
        assert model.c2.current_dilation() > 1
        alive = [layer.alive_channels() for layer in channel_layers(model)]
        assert alive[0] < 6 or alive[1] < 6
        # min_channels floor respected.
        assert alive[1] >= 2
        assert alive[0] >= 1

    def test_masks_frozen_after_fit(self):
        train, val = make_loaders()
        model = CombinedTCN()
        PITTrainer(model, mse_loss, lam=0.0, warmup_epochs=0,
                   max_prune_epochs=1, finetune_epochs=1).fit(train, val)
        for layer in channel_layers(model):
            assert layer.time_mask.frozen
            assert layer.channel_mask.frozen

    def test_effective_parameters_accounts_channels(self):
        model = CombinedTCN()
        full = effective_parameters(model)
        model.c2.channel_mask.set_alive(
            np.array([1, 1, 0, 0, 0, 0], dtype=float))
        pruned = effective_parameters(model)
        assert pruned < full

    def test_channel_lam_zero_keeps_channels(self):
        train, val = make_loaders()
        model = CombinedTCN(seed=2)
        trainer = PITTrainer(model, mse_loss, lam=0.0, channel_lam=0.0,
                             warmup_epochs=1, max_prune_epochs=2,
                             finetune_epochs=0)
        trainer.fit(train, val)
        for layer in channel_layers(model):
            assert layer.alive_channels() == layer.out_channels
