"""Tests for the 3-phase PIT trainer (paper Algorithm 1) and train_plain."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import PITConv1d, PITTrainer, pit_layers, train_plain, evaluate
from repro.data import ArrayDataset, DataLoader
from repro.nn import Module, ReLU, Sequential, mse_loss

RNG = np.random.default_rng(42)


class TinyTCN(Module):
    """Two searchable convs + pointwise head on a 1-channel sequence."""

    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.c1 = PITConv1d(1, 4, rf_max=9, rng=rng)
        self.r1 = ReLU()
        self.c2 = PITConv1d(4, 4, rf_max=9, rng=rng)
        self.r2 = ReLU()
        from repro.nn import CausalConv1d
        self.head = CausalConv1d(4, 1, kernel_size=1, rng=rng)

    def forward(self, x):
        return self.head(self.r2(self.c2(self.r1(self.c1(x)))))


def make_loaders(n=24, t=16, seed=0):
    """Lag-1 echo task: y_t = x_{t-1}; solvable at any dilation."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, t))
    y = np.concatenate([np.zeros((n, 1, 1)), x[:, :, :-1]], axis=2)
    ds = ArrayDataset(x, y)
    train = ArrayDataset(ds.inputs[: n // 2], ds.targets[: n // 2])
    val = ArrayDataset(ds.inputs[n // 2:], ds.targets[n // 2:])
    return (DataLoader(train, 8, shuffle=True, rng=np.random.default_rng(1)),
            DataLoader(val, 8))


class TestPITTrainerMechanics:
    def test_rejects_model_without_pit_layers(self):
        with pytest.raises(ValueError):
            PITTrainer(Sequential(ReLU()), mse_loss, lam=0.0)

    def test_rejects_bad_regularizer(self):
        with pytest.raises(ValueError):
            PITTrainer(TinyTCN(), mse_loss, lam=0.0, regularizer="latency")

    def test_phases_recorded(self):
        train, val = make_loaders()
        trainer = PITTrainer(TinyTCN(), mse_loss, lam=0.0, warmup_epochs=2,
                             max_prune_epochs=3, prune_patience=5,
                             finetune_epochs=2, finetune_patience=5)
        result = trainer.fit(train, val)
        assert result.warmup_epochs == 2
        assert result.prune_epochs == 3
        assert result.finetune_epochs == 2
        assert len(result.history["warmup_val"]) == 2
        assert len(result.history["prune_val"]) == 3
        assert len(result.history["finetune_val"]) == 2

    def test_timings_positive(self):
        train, val = make_loaders()
        trainer = PITTrainer(TinyTCN(), mse_loss, lam=0.0, warmup_epochs=1,
                             max_prune_epochs=1, finetune_epochs=1)
        result = trainer.fit(train, val)
        assert result.warmup_seconds > 0
        assert result.prune_seconds > 0
        assert result.finetune_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.warmup_seconds + result.prune_seconds + result.finetune_seconds)

    def test_masks_frozen_after_fit(self):
        train, val = make_loaders()
        model = TinyTCN()
        PITTrainer(model, mse_loss, lam=0.0, warmup_epochs=1,
                   max_prune_epochs=1, finetune_epochs=1).fit(train, val)
        assert all(layer.mask.frozen for layer in pit_layers(model))

    def test_warmup_does_not_move_gamma(self):
        train, val = make_loaders()
        model = TinyTCN()
        trainer = PITTrainer(model, mse_loss, lam=1.0, warmup_epochs=3,
                             max_prune_epochs=0, finetune_epochs=0)
        trainer.fit(train, val)
        for layer in pit_layers(model):
            assert np.allclose(layer.mask.gamma_hat.data, 1.0)

    def test_zero_warmup_allowed(self):
        train, val = make_loaders()
        trainer = PITTrainer(TinyTCN(), mse_loss, lam=0.0, warmup_epochs=0,
                             max_prune_epochs=1, finetune_epochs=1)
        result = trainer.fit(train, val)
        assert result.warmup_epochs == 0

    def test_prune_early_stops(self):
        # lr=0 -> validation loss never improves -> patience ends the loop.
        train, val = make_loaders()
        trainer = PITTrainer(TinyTCN(), mse_loss, lam=0.0, lr=0.0,
                             warmup_epochs=0, max_prune_epochs=50,
                             prune_patience=2, finetune_epochs=0)
        result = trainer.fit(train, val)
        # Epoch 1 sets the best; epochs 2-3 are stale -> patience(2) fires.
        assert result.prune_epochs == 3

    def test_result_dilations_match_model(self):
        train, val = make_loaders()
        model = TinyTCN()
        result = PITTrainer(model, mse_loss, lam=0.0, warmup_epochs=1,
                            max_prune_epochs=1, finetune_epochs=1).fit(train, val)
        assert len(result.dilations) >= 2


class TestRegularizationEffect:
    def test_strong_lambda_prunes_to_max_dilation(self):
        """With overwhelming λ, every layer should reach its max dilation."""
        train, val = make_loaders()
        model = TinyTCN()
        trainer = PITTrainer(model, mse_loss, lam=10.0, gamma_lr=0.05,
                             warmup_epochs=0, max_prune_epochs=30,
                             prune_patience=30, finetune_epochs=0)
        result = trainer.fit(train, val)
        for layer in pit_layers(model):
            assert layer.current_dilation() == 8

    def test_zero_lambda_keeps_dilation_one(self):
        """Without size pressure, the echo task keeps all taps alive."""
        train, val = make_loaders()
        model = TinyTCN()
        trainer = PITTrainer(model, mse_loss, lam=0.0, warmup_epochs=1,
                             max_prune_epochs=3, prune_patience=5,
                             finetune_epochs=0)
        trainer.fit(train, val)
        # γ̂ may drift slightly but must stay above the 0.5 threshold.
        for layer in pit_layers(model):
            assert layer.current_dilation() in (1, 2)

    def test_larger_lambda_gives_smaller_or_equal_model(self):
        train, val = make_loaders()
        sizes = []
        for lam in (0.0, 10.0):
            model = TinyTCN(seed=3)
            trainer = PITTrainer(model, mse_loss, lam=lam, gamma_lr=0.05,
                                 warmup_epochs=1, max_prune_epochs=20,
                                 prune_patience=20, finetune_epochs=0)
            result = trainer.fit(train, val)
            sizes.append(result.effective_params)
        assert sizes[1] <= sizes[0]

    def test_flops_regularizer_runs(self):
        train, val = make_loaders()
        trainer = PITTrainer(TinyTCN(), mse_loss, lam=0.01, regularizer="flops",
                             warmup_epochs=0, max_prune_epochs=2,
                             finetune_epochs=0)
        result = trainer.fit(train, val)
        assert result.prune_epochs == 2


class TestTraining:
    def test_loss_improves_on_echo_task(self):
        train, val = make_loaders()
        model = TinyTCN()
        before = evaluate(model, mse_loss, val)
        trainer = PITTrainer(model, mse_loss, lam=0.0, lr=0.01, warmup_epochs=3,
                             max_prune_epochs=5, prune_patience=5,
                             finetune_epochs=5, finetune_patience=5)
        result = trainer.fit(train, val)
        assert result.best_val < before

    def test_best_state_restored(self):
        train, val = make_loaders()
        model = TinyTCN()
        result = PITTrainer(model, mse_loss, lam=0.0, warmup_epochs=1,
                            max_prune_epochs=2, finetune_epochs=3,
                            finetune_patience=3).fit(train, val)
        final = evaluate(model, mse_loss, val)
        assert final == pytest.approx(result.best_val, rel=1e-6)


class TestTrainPlain:
    def test_improves_and_reports(self):
        train, val = make_loaders()
        from repro.nn import CausalConv1d
        model = Sequential(CausalConv1d(1, 4, 3, rng=np.random.default_rng(0)),
                           ReLU(),
                           CausalConv1d(4, 1, 1, rng=np.random.default_rng(1)))
        before = evaluate(model, mse_loss, val)
        result = train_plain(model, mse_loss, train, val, epochs=10, lr=0.01,
                             patience=10)
        assert result.best_val < before
        assert result.epochs <= 10
        assert result.seconds > 0
        assert len(result.history) == result.epochs

    def test_early_stopping_triggers(self):
        train, val = make_loaders()
        from repro.nn import CausalConv1d
        model = Sequential(CausalConv1d(1, 1, 1, rng=np.random.default_rng(0)))
        result = train_plain(model, mse_loss, train, val, epochs=100, lr=0.0,
                             patience=3)
        assert result.epochs < 100

    def test_evaluate_requires_batches(self):
        empty = DataLoader(ArrayDataset(np.zeros((0, 1, 4)), np.zeros((0, 1, 4))), 4)
        from repro.nn import CausalConv1d
        model = Sequential(CausalConv1d(1, 1, 1, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError):
            evaluate(model, mse_loss, empty)
