"""Tests for the LSTM/GRU layers and RNN baseline models."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import train_plain
from repro.data import ArrayDataset, DataLoader
from repro.models.rnn_baselines import HeartRateGRU, MusicLSTM
from repro.nn import mse_loss
from repro.nn.recurrent import GRU, LSTM

RNG = np.random.default_rng(202)


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(3, 5, rng=np.random.default_rng(0))
        out = lstm(Tensor(RNG.standard_normal((2, 3, 7))))
        assert out.shape == (2, 5, 7)

    def test_rejects_bad_input(self):
        lstm = LSTM(3, 5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            lstm(Tensor(RNG.standard_normal((2, 4, 7))))

    def test_causality(self):
        """The hidden state at t must not depend on inputs after t."""
        lstm = LSTM(2, 4, rng=np.random.default_rng(0))
        x = RNG.standard_normal((1, 2, 8))
        base = lstm(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, -1] += 10.0
        out = lstm(Tensor(x2)).data
        assert np.allclose(out[:, :, :-1], base[:, :, :-1])
        assert not np.allclose(out[:, :, -1], base[:, :, -1])

    def test_state_bounded_by_tanh(self):
        lstm = LSTM(2, 4, rng=np.random.default_rng(0))
        out = lstm(Tensor(RNG.standard_normal((2, 2, 20)) * 5))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_forget_bias_initialized_to_one(self):
        lstm = LSTM(2, 4, rng=np.random.default_rng(0))
        assert np.allclose(lstm.bias.data[4:8], 1.0)
        assert np.allclose(lstm.bias.data[:4], 0.0)

    def test_gradients_flow_through_time(self):
        lstm = LSTM(2, 3, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((1, 2, 6)), requires_grad=True)
        out = lstm(x)
        out[:, :, -1].sum().backward()  # loss only at the last step
        # Early inputs still receive gradient through the recurrence.
        assert np.abs(x.grad[:, :, 0]).sum() > 0
        assert lstm.weight_hh.grad is not None

    def test_initial_state_accepted(self):
        lstm = LSTM(2, 3, rng=np.random.default_rng(0))
        h0 = Tensor(np.ones((1, 3)))
        c0 = Tensor(np.ones((1, 3)))
        out_with = lstm(Tensor(np.zeros((1, 2, 3))), state=(h0, c0))
        out_without = lstm(Tensor(np.zeros((1, 2, 3))))
        assert not np.allclose(out_with.data, out_without.data)


class TestGRU:
    def test_output_shape(self):
        gru = GRU(3, 5, rng=np.random.default_rng(0))
        assert gru(Tensor(RNG.standard_normal((2, 3, 7)))).shape == (2, 5, 7)

    def test_causality(self):
        gru = GRU(2, 4, rng=np.random.default_rng(0))
        x = RNG.standard_normal((1, 2, 8))
        base = gru(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, 5] += 10.0
        out = gru(Tensor(x2)).data
        assert np.allclose(out[:, :, :5], base[:, :, :5])

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            GRU(3, 5, rng=np.random.default_rng(0))(Tensor(np.zeros((1, 2, 4))))

    def test_gradients_flow(self):
        gru = GRU(2, 3, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((1, 2, 5)), requires_grad=True)
        gru(x).sum().backward()
        assert x.grad is not None
        assert gru.weight_ih.grad is not None

    def test_zero_update_gate_keeps_state(self):
        """With z forced to 1 (keep), the state never changes from h0."""
        gru = GRU(1, 2, rng=np.random.default_rng(0))
        # Force update gate to ~1 via its bias; other weights small.
        gru.weight_ih.data[...] = 0.0
        gru.weight_hh.data[...] = 0.0
        gru.bias_ih.data[...] = 0.0
        gru.bias_hh.data[...] = 0.0
        gru.bias_ih.data[2:4] = 50.0  # z-gate rows
        h0 = Tensor(np.full((1, 2), 0.7))
        out = gru(Tensor(RNG.standard_normal((1, 1, 6))), state=h0)
        assert np.allclose(out.data, 0.7, atol=1e-6)


class TestRNNBaselines:
    def test_music_lstm_shapes(self):
        model = MusicLSTM(num_keys=12, hidden=8, rng=np.random.default_rng(0))
        out = model(Tensor(RNG.standard_normal((2, 12, 10))))
        assert out.shape == (2, 12, 10)

    def test_music_gru_variant(self):
        model = MusicLSTM(num_keys=8, hidden=6, cell="gru",
                          rng=np.random.default_rng(0))
        assert model(Tensor(RNG.standard_normal((1, 8, 5)))).shape == (1, 8, 5)

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            MusicLSTM(cell="rnn")

    def test_heart_rate_gru_shapes(self):
        model = HeartRateGRU(hidden=8, rng=np.random.default_rng(0))
        out = model(Tensor(RNG.standard_normal((3, 4, 32))))
        assert out.shape == (3, 1)
        # Output starts near the bias init (100 BPM).
        assert np.all(np.abs(out.data - 100.0) < 20.0)

    def test_lstm_learns_echo_task(self):
        """Trainability check: the LSTM fits a small lag-1 echo problem."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 1, 8))
        y = np.concatenate([np.zeros((16, 1, 1)), x[:, :, :-1]], axis=2)
        train = DataLoader(ArrayDataset(x[:12], y[:12]), 4, shuffle=True,
                           rng=np.random.default_rng(1))
        val = DataLoader(ArrayDataset(x[12:], y[12:]), 4)
        model = MusicLSTM(num_keys=1, hidden=8, head_bias_init=0.0,
                          rng=np.random.default_rng(2))
        result = train_plain(model, mse_loss, train, val, epochs=15, lr=0.02,
                             patience=15)
        assert result.history[-1][0] < result.history[0][0]
